// Peer outbox & directory deltas (DESIGN.md "Peer outbox & directory
// deltas"):
//  * wire compatibility — the outbox fast path that splices pre-encoded
//    standalone events is byte-identical to proto::encode_event_frames;
//  * hardening — absurd wire counts throw DecodeError instead of
//    pre-reserving unbounded memory;
//  * equivalence — a randomized collab round delivers the same per-client
//    chat and update streams whether peer_flush_delay is 0 (legacy
//    singular forward_event calls) or batching is on;
//  * A/B — peer_flush_delay=0 emits zero batches and its runs are
//    byte-identical per seed (the legacy wire path, kept verbatim);
//  * rolling upgrade — a peer that rejects forward_events with
//    invalid_argument is downgraded to singular sends and still gets every
//    event;
//  * backpressure — a suspect peer's outbox holds events bounded by
//    peer_outbox_cap, sheds periodic updates first, and drains on heal;
//  * directory — one full snapshot at first contact, deltas afterwards;
//    membership and phase changes propagate without new fulls; an epoch
//    bump forces a full resync; peer_dir_deltas=false keeps the
//    full-every-round behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "app/synthetic.h"
#include "util/rng.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;
using workload::make_acl;

proto::ClientEvent sample_event(std::uint64_t seq, proto::EventKind kind,
                                const std::string& user,
                                const std::string& text) {
  proto::ClientEvent ev;
  ev.kind = kind;
  ev.seq = seq;
  ev.app = proto::AppId{2, 1};
  ev.at = 1000 + seq;
  ev.user = user;
  ev.text = text;
  ev.iteration = seq * 3;
  ev.metrics = {{"residual", 0.5 / static_cast<double>(seq + 1)}};
  return ev;
}

// ---------------------------------------------------------------------------
// Wire compatibility: splice fast path == struct reference encoding
// ---------------------------------------------------------------------------

TEST(PeerBatchWireCompat, SpliceEncodingMatchesStructEncoding) {
  std::vector<proto::EventFrame> frames;
  proto::EventFrame push;
  push.kind = proto::EventFrameKind::push;
  push.app = proto::AppId{2, 1};
  push.seq_first = 7;
  push.seq_last = 9;
  push.events = {sample_event(7, proto::EventKind::update, "", ""),
                 sample_event(8, proto::EventKind::chat, "alice", "hi all"),
                 sample_event(9, proto::EventKind::lock_notice, "alice",
                              "granted")};
  proto::EventFrame relay;
  relay.kind = proto::EventFrameKind::collab_relay;
  relay.app = proto::AppId{2, 3};
  relay.events = {sample_event(0, proto::EventKind::whiteboard, "bob",
                               "circle at (3,4)")};
  frames = {push, relay};

  wire::Encoder reference;
  proto::encode_event_frames(reference, frames);

  // The outbox path: each event CDR-encoded standalone exactly once, then
  // spliced into the batch at an 8-byte boundary (server_remote.cpp,
  // flush_outbox).
  wire::Encoder spliced;
  spliced.u32(static_cast<std::uint32_t>(frames.size()));
  for (const auto& f : frames) {
    spliced.u8(static_cast<std::uint8_t>(f.kind));
    proto::encode(spliced, f.app);
    spliced.u64(f.seq_first);
    spliced.u64(f.seq_last);
    spliced.u32(static_cast<std::uint32_t>(f.events.size()));
    for (const auto& ev : f.events) {
      wire::Encoder standalone;
      proto::encode(standalone, ev);
      spliced.align_to(8);
      spliced.splice(std::move(standalone).take());
    }
  }

  const util::Bytes a = std::move(reference).take();
  const util::Bytes b = std::move(spliced).take();
  ASSERT_EQ(a, b);

  wire::Decoder d(a);
  const auto decoded = proto::decode_event_frames(d);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(static_cast<int>(decoded[0].kind),
            static_cast<int>(proto::EventFrameKind::push));
  EXPECT_EQ(decoded[0].seq_first, 7u);
  EXPECT_EQ(decoded[0].seq_last, 9u);
  ASSERT_EQ(decoded[0].events.size(), 3u);
  EXPECT_EQ(decoded[0].events[0], push.events[0]);
  EXPECT_EQ(decoded[0].events[1], push.events[1]);
  EXPECT_EQ(decoded[0].events[2], push.events[2]);
  ASSERT_EQ(decoded[1].events.size(), 1u);
  EXPECT_EQ(decoded[1].events[0], relay.events[0]);
}

// ---------------------------------------------------------------------------
// Hardening: hostile counts must throw, not reserve
// ---------------------------------------------------------------------------

TEST(PeerBatchDecodeCaps, AbsurdFrameCountThrows) {
  wire::Encoder e;
  e.u32(0xFFFFFFFFu);  // claims 4 billion frames, carries none
  const util::Bytes bytes = std::move(e).take();
  wire::Decoder d(bytes);
  EXPECT_THROW((void)proto::decode_event_frames(d), wire::DecodeError);
}

TEST(PeerBatchDecodeCaps, AbsurdEventCountInsideFrameThrows) {
  wire::Encoder e;
  e.u32(1);  // one frame ...
  e.u8(static_cast<std::uint8_t>(proto::EventFrameKind::push));
  proto::encode(e, proto::AppId{2, 1});
  e.u64(1);
  e.u64(2);
  e.u32(0x7FFFFFFFu);  // ... claiming 2 billion events
  const util::Bytes bytes = std::move(e).take();
  wire::Decoder d(bytes);
  EXPECT_THROW((void)proto::decode_event_frames(d), wire::DecodeError);
}

TEST(PeerBatchDecodeCaps, TruncatedDirectoryUpdateThrows) {
  wire::Encoder e;
  e.u64(42);  // epoch only; version/flag/sequences missing
  const util::Bytes bytes = std::move(e).take();
  wire::Decoder d(bytes);
  EXPECT_THROW((void)proto::decode_directory_update(d), wire::DecodeError);
}

// ---------------------------------------------------------------------------
// Equivalence: batched vs peer_flush_delay=0, randomized collab round
// ---------------------------------------------------------------------------

struct RoundResult {
  std::vector<std::vector<proto::ClientEvent>> per_client;
  core::ServerStats host_stats;
  core::ServerStats near_stats;
  std::uint64_t host_invocations = 0;
  std::string trace;
};

app::AppConfig watched_app(const std::string& name) {
  app::AppConfig cfg;
  cfg.name = name;
  cfg.acl = make_acl({{"u0", Privilege::steer},
                      {"u1", Privilege::read_write},
                      {"u2", Privilege::read_write}});
  cfg.step_time = util::milliseconds(5);
  cfg.update_every = 20;  // an update every 100 ms of sim time
  cfg.interact_every = 0;
  return cfg;
}

RoundResult run_collab_round(util::Duration flush_delay, std::uint64_t seed,
                             bool trace = false) {
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  cfg.server_template.peer_flush_delay = flush_delay;
  workload::Scenario scenario(cfg);
  auto& near = scenario.add_server("near", 1);
  auto& host = scenario.add_server("host", 2);
  auto& app = scenario.add_app<app::SyntheticApp>(host, watched_app("shared"),
                                                  app::SyntheticSpec{});
  scenario.add_app<app::SyntheticApp>(near, watched_app("identity"),
                                      app::SyntheticSpec{});
  EXPECT_TRUE(scenario.run_until([&] {
    return app.registered() && near.peer_count() == 1 &&
           host.peer_count() == 1;
  }));
  if (trace) scenario.net().set_trace_enabled(true);
  const proto::AppId id = app.app_id();

  std::vector<core::DiscoverClient*> clients;
  for (int i = 0; i < 3; ++i) {
    auto& c = scenario.add_client("u" + std::to_string(i), near);
    EXPECT_TRUE(workload::sync_login(scenario.net(), c).value().ok);
    EXPECT_TRUE(workload::sync_select(scenario.net(), c, id).value().ok);
    clients.push_back(&c);
  }

  // A randomized interleaving of collab posts, steering commands and idle
  // gaps — the same seed drives the same op sequence in both A/B arms.
  util::Rng rng(seed);
  int chats = 0;
  for (int i = 0; i < 40; ++i) {
    const double dice = rng.uniform();
    core::DiscoverClient& c = *clients[rng.below(clients.size())];
    if (dice < 0.5) {
      (void)workload::sync_collab_post(scenario.net(), c, id,
                                       proto::EventKind::chat,
                                       "msg " + std::to_string(chats++));
    } else if (dice < 0.7) {
      (void)workload::sync_command(scenario.net(), c, id,
                                   proto::CommandKind::query_status, "");
    } else {
      scenario.run_for(util::milliseconds(rng.below(120)));
    }
  }

  // Quiesce: let every outbox flush and every client drain its stream.
  scenario.run_for(util::seconds(2));
  for (int round = 0; round < 5; ++round) {
    for (auto* c : clients) (void)workload::sync_poll(scenario.net(), *c, id);
    scenario.run_for(util::milliseconds(100));
  }

  RoundResult out;
  for (auto* c : clients) out.per_client.push_back(c->received_events());
  out.host_stats = host.stats();
  out.near_stats = near.stats();
  out.host_invocations = host.orb().invocations();
  if (trace) out.trace = scenario.net().trace();
  return out;
}

/// Timing-independent projection: the (user, text) chat stream in arrival
/// order, and the update iterations in arrival order.
std::pair<std::vector<std::pair<std::string, std::string>>,
          std::vector<std::uint64_t>>
project(const std::vector<proto::ClientEvent>& events) {
  std::vector<std::pair<std::string, std::string>> chats;
  std::vector<std::uint64_t> updates;
  for (const auto& ev : events) {
    if (ev.kind == proto::EventKind::chat) chats.emplace_back(ev.user, ev.text);
    if (ev.kind == proto::EventKind::update) updates.push_back(ev.iteration);
  }
  return {std::move(chats), std::move(updates)};
}

TEST(PeerBatchEquivalence, BatchedDeliversSameStreamsAsLegacy) {
  const RoundResult batched =
      run_collab_round(util::milliseconds(5), 0xBA7C4ULL);
  const RoundResult legacy = run_collab_round(0, 0xBA7C4ULL);
  ASSERT_EQ(batched.per_client.size(), legacy.per_client.size());
  for (std::size_t i = 0; i < batched.per_client.size(); ++i) {
    const auto [chats_b, updates_b] = project(batched.per_client[i]);
    const auto [chats_l, updates_l] = project(legacy.per_client[i]);
    // Chats are posted after every subscription is up, so the streams must
    // match exactly: same posts, same order, no duplicates, no losses.
    EXPECT_EQ(chats_b, chats_l) << "client " << i << " chat divergence";
    EXPECT_FALSE(chats_b.empty());
    // A late subscriber's first update is timing-dependent (its baseline is
    // taken when the select lands), so compare updates over the common
    // window; within it the streams must be identical and gap-free.
    EXPECT_TRUE(std::is_sorted(updates_b.begin(), updates_b.end()));
    EXPECT_TRUE(std::is_sorted(updates_l.begin(), updates_l.end()));
    std::vector<std::uint64_t> wb = updates_b;
    std::vector<std::uint64_t> wl = updates_l;
    ASSERT_FALSE(wb.empty());
    ASSERT_FALSE(wl.empty());
    const std::uint64_t start = std::max(wb.front(), wl.front());
    auto trim = [&](std::vector<std::uint64_t>& v) {
      v.erase(v.begin(),
              std::find_if(v.begin(), v.end(),
                           [&](std::uint64_t x) { return x >= start; }));
    };
    trim(wb);
    trim(wl);
    const std::size_t n = std::min(wb.size(), wl.size());
    wb.resize(n);
    wl.resize(n);
    EXPECT_GT(n, 10u) << "client " << i << " common window too small";
    EXPECT_EQ(wb, wl) << "client " << i << " update divergence";
  }

  // The batched arm coalesced (fewer wire calls than events), the legacy
  // arm never batched, and both pushed the same number of events.
  EXPECT_GT(batched.host_stats.peer_batches_out, 0u);
  EXPECT_LT(batched.host_stats.peer_batches_out,
            batched.host_stats.peer_events_out);
  EXPECT_GT(batched.host_stats.flushes_by_timer, 0u);
  EXPECT_EQ(legacy.host_stats.peer_batches_out, 0u);
  EXPECT_GT(legacy.host_stats.peer_events_out, 0u);
}

TEST(PeerBatchLegacyDelay0, RunsAreByteIdenticalAndUnbatched) {
  const RoundResult a = run_collab_round(0, 0xABCDEULL, /*trace=*/true);
  const RoundResult b = run_collab_round(0, 0xABCDEULL, /*trace=*/true);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_FALSE(a.trace.empty());
  EXPECT_EQ(a.host_stats.peer_batches_out, 0u);
  EXPECT_EQ(a.host_stats.flushes_by_timer, 0u);
  EXPECT_EQ(a.host_stats.flushes_by_count, 0u);
  EXPECT_EQ(a.host_stats.flushes_by_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Rolling upgrade: an old peer rejects forward_events; singular fallback
// ---------------------------------------------------------------------------

TEST(PeerBatchMixedVersion, LegacyPeerFallsBackToSingularForwarding) {
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  workload::Scenario scenario(cfg);
  // The subscriber emulates a pre-batching build: its servant has no
  // forward_events / list_apps_since methods.
  core::ServerConfig old_cfg = cfg.server_template;
  old_cfg.emulate_legacy_peer = true;
  auto& near = scenario.add_server("near", 1, old_cfg);
  auto& host = scenario.add_server("host", 2);
  auto& app = scenario.add_app<app::SyntheticApp>(host, watched_app("shared"),
                                                  app::SyntheticSpec{});
  scenario.add_app<app::SyntheticApp>(near, watched_app("identity"),
                                      app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] {
    return app.registered() && near.peer_count() == 1 &&
           host.peer_count() == 1;
  }));
  const proto::AppId id = app.app_id();

  auto& alice = scenario.add_client("u0", near);
  ASSERT_TRUE(workload::sync_login(scenario.net(), alice).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario.net(), alice, id).value().ok);

  // The host's first batch bounces with invalid_argument, the outbox
  // downgrades the peer, and the same events arrive through the singular
  // compat alias — nothing is lost in the downgrade.
  auto arrived_updates = [&] {
    std::vector<std::uint64_t> iters;
    (void)workload::sync_poll(scenario.net(), alice, id);
    for (const auto& ev : alice.received_events()) {
      if (ev.kind == proto::EventKind::update) iters.push_back(ev.iteration);
    }
    return iters;
  };
  ASSERT_TRUE(workload::wait_for(scenario.net(), [&] {
    return arrived_updates().size() >= 3;
  }));
  const auto iters = arrived_updates();
  EXPECT_TRUE(std::is_sorted(iters.begin(), iters.end()));
  EXPECT_GE(host.stats().peer_batches_out, 1u);  // the probe that bounced
  EXPECT_GT(host.stats().peer_events_out, 0u);

  // Collab relays take the singular forward_collab route as well.
  ASSERT_TRUE(workload::sync_collab_post(scenario.net(), alice, id,
                                         proto::EventKind::chat, "old chat")
                  .value()
                  .ok);
  ASSERT_TRUE(workload::wait_for(scenario.net(), [&] {
    (void)workload::sync_poll(scenario.net(), alice, id);
    const auto evs = alice.received_events();
    return std::any_of(evs.begin(), evs.end(), [](const auto& ev) {
      return ev.kind == proto::EventKind::chat && ev.text == "old chat";
    });
  }));
}

// ---------------------------------------------------------------------------
// Backpressure: suspect peer -> bounded outbox, update shedding, heal drain
// ---------------------------------------------------------------------------

TEST(PeerBatchBackpressure, SuspectPeerOutboxShedsUpdatesAndDrainsOnHeal) {
  // Only the host runs the aggressive suspicion config; the subscriber
  // keeps suspicion off so it does not withdraw the remote app (and its
  // subscription with it) during the partition — the point here is the
  // host-side outbox, not departure handling.
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  cfg.server_template.peer_suspect_threshold = 0;
  workload::Scenario scenario(cfg);
  auto& near = scenario.add_server("near", 1);
  core::ServerConfig host_cfg = cfg.server_template;
  host_cfg.orb_call_timeout = util::milliseconds(200);
  host_cfg.peer_suspect_threshold = 1;
  host_cfg.peer_outbox_cap = 4;
  auto& host = scenario.add_server("host", 2, host_cfg);
  app::AppConfig chatty = watched_app("shared");
  chatty.update_every = 10;  // an update every 50 ms: pressure on the outbox
  auto& app = scenario.add_app<app::SyntheticApp>(host, chatty,
                                                  app::SyntheticSpec{});
  scenario.add_app<app::SyntheticApp>(near, watched_app("identity"),
                                      app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] {
    return app.registered() && near.peer_count() == 1 &&
           host.peer_count() == 1;
  }));
  const proto::AppId id = app.app_id();

  auto& alice = scenario.add_client("u0", near);
  ASSERT_TRUE(workload::sync_login(scenario.net(), alice).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario.net(), alice, id).value().ok);
  ASSERT_TRUE(scenario.run_until([&] {
    return host.stats().peer_events_out > 0;
  }));

  // Cut the WAN: the host's next flush fails, near goes suspect, and the
  // outbox holds what the app keeps publishing — bounded by the cap, with
  // periodic updates shed first.
  scenario.partition(near, host);
  ASSERT_TRUE(scenario.run_until(
      [&] { return host.peer_suspect(near.node()); }, util::seconds(30)));
  ASSERT_TRUE(scenario.run_until(
      [&] { return host.stats().outbox_dropped > 0; }, util::seconds(30)));
  EXPECT_LE(host.outbox_depth(near.node().value()), host_cfg.peer_outbox_cap);

  // Heal: the probe clears suspicion and the held tail drains; the stream
  // at the watcher resumes with fresh iterations.
  const auto latest_before_heal = [&] {
    std::uint64_t latest = 0;
    for (const auto& ev : alice.received_events()) {
      if (ev.kind == proto::EventKind::update) {
        latest = std::max(latest, ev.iteration);
      }
    }
    return latest;
  }();
  scenario.heal(near, host);
  ASSERT_TRUE(scenario.run_until(
      [&] { return !host.peer_suspect(near.node()); }, util::seconds(30)));
  ASSERT_TRUE(workload::wait_for(scenario.net(), [&] {
    (void)workload::sync_poll(scenario.net(), alice, id);
    const auto evs = alice.received_events();
    return std::any_of(evs.begin(), evs.end(), [&](const auto& ev) {
      return ev.kind == proto::EventKind::update &&
             ev.iteration > latest_before_heal;
    });
  }));
}

// ---------------------------------------------------------------------------
// Versioned directory: full once, deltas after, epoch bump resyncs
// ---------------------------------------------------------------------------

bool directory_has(core::DiscoverServer& at, core::DiscoverServer& of,
                   const std::string& app_name) {
  const auto dir = at.peer_directory(of.node().value());
  return std::any_of(dir.begin(), dir.end(), [&](const proto::AppInfo& a) {
    return a.name == app_name;
  });
}

TEST(PeerDirectory, FullOnceThenDeltasThenEpochBumpResyncs) {
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  workload::Scenario scenario(cfg);
  auto& near = scenario.add_server("near", 1);
  auto& host = scenario.add_server("host", 2);
  auto& app = scenario.add_app<app::SyntheticApp>(host, watched_app("shared"),
                                                  app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] {
    return app.registered() && near.peer_count() == 1 &&
           host.peer_count() == 1;
  }));

  // First contact costs one full snapshot; steady state is all deltas.
  ASSERT_TRUE(scenario.run_until([&] {
    return near.stats().dir_fulls_in >= 1 && directory_has(near, host,"shared");
  }));
  const std::uint64_t fulls = near.stats().dir_fulls_in;
  const std::uint64_t deltas = near.stats().dir_deltas_in;
  scenario.run_for(util::seconds(1));
  EXPECT_EQ(near.stats().dir_fulls_in, fulls);
  EXPECT_GT(near.stats().dir_deltas_in, deltas);

  // A new app at the host arrives at the peer through a delta, not a full.
  app::AppConfig late_cfg = watched_app("latecomer");
  auto& late = scenario.add_app<app::SyntheticApp>(host, late_cfg,
                                                   app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return late.registered(); }));
  ASSERT_TRUE(scenario.run_until([&] {
    return directory_has(near, host,"latecomer");
  }));
  EXPECT_EQ(near.stats().dir_fulls_in, fulls);

  // A deregistration is withdrawn through a delta as well.
  app::AppConfig brief_cfg = watched_app("brief");
  brief_cfg.max_steps = 50;  // registers, runs 250 ms, deregisters
  auto& brief = scenario.add_app<app::SyntheticApp>(host, brief_cfg,
                                                    app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return brief.registered(); }));
  ASSERT_TRUE(scenario.run_until([&] {
    return directory_has(near, host,"brief");
  }));
  ASSERT_TRUE(scenario.run_until([&] {
    return !directory_has(near, host,"brief");
  }));
  EXPECT_EQ(near.stats().dir_fulls_in, fulls);
  EXPECT_TRUE(directory_has(near, host,"shared"));
  EXPECT_TRUE(directory_has(near, host,"latecomer"));

  // An epoch bump (host restart / log reset) forces exactly a full resync.
  host.bump_directory_epoch();
  ASSERT_TRUE(scenario.run_until([&] {
    return near.stats().dir_fulls_in > fulls;
  }));
  EXPECT_TRUE(directory_has(near, host,"shared"));
  EXPECT_TRUE(directory_has(near, host,"latecomer"));
}

TEST(PeerDirectory, DeltasOffFallsBackToFullEveryRound) {
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  cfg.server_template.peer_dir_deltas = false;
  workload::Scenario scenario(cfg);
  auto& near = scenario.add_server("near", 1);
  auto& host = scenario.add_server("host", 2);
  auto& app = scenario.add_app<app::SyntheticApp>(host, watched_app("shared"),
                                                  app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] {
    return app.registered() && near.peer_count() == 1 &&
           host.peer_count() == 1;
  }));
  ASSERT_TRUE(scenario.run_until([&] {
    return near.stats().dir_fulls_in >= 3;
  }));
  EXPECT_EQ(near.stats().dir_deltas_in, 0u);
  EXPECT_TRUE(directory_has(near, host,"shared"));
  EXPECT_GT(near.stats().dir_refresh_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Flush trigger counters: count and bytes triggers fire under load
// ---------------------------------------------------------------------------

TEST(PeerBatchStats, CountAndBytesTriggersFire) {
  // Tiny thresholds so a firehose app trips both triggers quickly.
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  cfg.server_template.peer_flush_delay = util::milliseconds(50);
  cfg.server_template.peer_batch_max_events = 3;
  workload::Scenario scenario(cfg);
  auto& near = scenario.add_server("near", 1);

  core::ServerConfig bytes_cfg = cfg.server_template;
  bytes_cfg.peer_batch_max_events = 1000;
  bytes_cfg.peer_batch_max_bytes = 256;
  auto& host = scenario.add_server("host", 2, bytes_cfg);

  app::AppConfig firehose = watched_app("shared");
  firehose.step_time = util::milliseconds(2);
  firehose.update_every = 1;  // an update every 2 ms
  auto& app = scenario.add_app<app::SyntheticApp>(host, firehose,
                                                  app::SyntheticSpec{});
  app::AppConfig firehose2 = firehose;
  firehose2.name = "reverse";
  auto& app2 = scenario.add_app<app::SyntheticApp>(near, firehose2,
                                                   app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] {
    return app.registered() && app2.registered() && near.peer_count() == 1 &&
           host.peer_count() == 1;
  }));

  // Watch both directions so each server has an outbox under pressure:
  // host flushes on bytes (256-byte budget), near flushes on count (3).
  auto& alice = scenario.add_client("u0", near);
  ASSERT_TRUE(workload::sync_login(scenario.net(), alice).value().ok);
  ASSERT_TRUE(
      workload::sync_select(scenario.net(), alice, app.app_id()).value().ok);
  auto& bob = scenario.add_client("u1", host);
  ASSERT_TRUE(workload::sync_login(scenario.net(), bob).value().ok);
  ASSERT_TRUE(
      workload::sync_select(scenario.net(), bob, app2.app_id()).value().ok);

  ASSERT_TRUE(scenario.run_until([&] {
    return host.stats().flushes_by_bytes > 0 &&
           near.stats().flushes_by_count > 0;
  }));
  EXPECT_GT(host.stats().peer_batch_events_max, 1u);
}

}  // namespace
}  // namespace discover
