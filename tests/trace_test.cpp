// Request-scoped tracing (DESIGN.md "Observability"):
//  * header — the X-Trace-Context traceparent form round-trips and rejects
//    malformed input;
//  * sampling — sample_every=0 disables, =1 traces every root, =N traces
//    the first root of each stride so short runs still trace;
//  * ring — bounded span storage evicts oldest-first and counts evictions;
//  * cross-server — one trace id spans client HTTP -> collab servlet at the
//    near server -> peer-batch forward (GIOP frame tail) -> delivery at the
//    host, and two same-seed runs dump byte-identical traces;
//  * off switch — trace_sample_every=0 records nothing anywhere.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "app/synthetic.h"
#include "core/server.h"
#include "util/trace.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;
using util::TraceContext;
using util::Tracer;
using workload::make_acl;

// ---------------------------------------------------------------------------
// Header form
// ---------------------------------------------------------------------------

TEST(TraceHeader, RoundTrips) {
  TraceContext ctx;
  ctx.trace_id = 0x100000002ULL;
  ctx.span_id = 0x10000000aULL;
  const std::string h = util::encode_trace_header(ctx);
  EXPECT_EQ(h, "0000000100000002-000000010000000a-01");
  const auto back = util::parse_trace_header(h);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace_id, ctx.trace_id);
  EXPECT_EQ(back->span_id, ctx.span_id);
}

TEST(TraceHeader, RejectsMalformed) {
  EXPECT_FALSE(util::parse_trace_header("").has_value());
  EXPECT_FALSE(util::parse_trace_header("not-a-header").has_value());
  // Uppercase hex and zero trace ids are rejected.
  EXPECT_FALSE(util::parse_trace_header(
                   "00000001000000AB-000000010000000a-01").has_value());
  EXPECT_FALSE(util::parse_trace_header(
                   "0000000000000000-000000010000000a-01").has_value());
}

// ---------------------------------------------------------------------------
// Sampling & ring
// ---------------------------------------------------------------------------

TEST(TracerSampling, ZeroDisablesOneTracesAll) {
  Tracer off;
  off.configure(1, 0, 64);
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.mint_root().valid());

  Tracer all;
  all.configure(1, 1, 64);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(all.mint_root().valid());
}

TEST(TracerSampling, StrideTracesFirstOfEach) {
  Tracer t;
  t.configure(1, 4, 64);
  std::vector<bool> sampled;
  for (int i = 0; i < 8; ++i) sampled.push_back(t.mint_root().valid());
  EXPECT_EQ(sampled, (std::vector<bool>{true, false, false, false, true,
                                        false, false, false}));
}

TEST(TracerRing, EvictsOldestFirst) {
  Tracer t;
  t.configure(1, 1, 2);
  for (int i = 0; i < 3; ++i) {
    t.record(t.mint_root(), "span" + std::to_string(i), i, 1);
  }
  EXPECT_EQ(t.spans_recorded(), 3u);
  EXPECT_EQ(t.spans_evicted(), 1u);
  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0]->name, "span1");
  EXPECT_EQ(spans[1]->name, "span2");
}

TEST(TracerRing, ChildSpansKeepTraceIdAndParent) {
  Tracer t;
  t.configure(3, 1, 8);
  const TraceContext root = t.mint_root();
  const TraceContext child = t.child_of(root);
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_NE(child.span_id, root.span_id);
  EXPECT_EQ(child.parent_span, root.span_id);
  EXPECT_FALSE(t.child_of(TraceContext{}).valid());
}

// ---------------------------------------------------------------------------
// Shard-encoded ids (DESIGN.md §5i): id = node<<32 | seq<<shard_bits |
// shard_index, so per-core tracers of one sharded server never collide.
// ---------------------------------------------------------------------------

TEST(TracerShardMinting, PinnedIdLayout) {
  // Defaults (shard_index 0, shard_bits 0) are exactly the legacy
  // node<<32|seq layout — shard_count = 1 stays wire-identical.
  Tracer legacy;
  legacy.configure(7, 1, 8);
  EXPECT_EQ(legacy.mint_root().trace_id, (7ULL << 32) | 1u);
  EXPECT_EQ(legacy.mint_root().trace_id, (7ULL << 32) | 2u);

  // A core minting as shard 3 of 4 (2 bits) interleaves its index into the
  // low bits of every id.
  Tracer shard;
  shard.configure(7, 1, 8, /*shard_index=*/3, /*shard_bits=*/2);
  const TraceContext first = shard.mint_root();
  EXPECT_EQ(first.trace_id, (7ULL << 32) | (1u << 2) | 3u);
  EXPECT_EQ(first.span_id, (7ULL << 32) | (1u << 2) | 3u);
  EXPECT_EQ(shard.mint_root().trace_id, (7ULL << 32) | (2u << 2) | 3u);
}

TEST(TracerShardMinting, ConcurrentCoreMintsNeverCollide) {
  // Four tracers minting as the four cores of one node: every trace id is
  // distinct, and the owning core is recoverable from the low bits.
  std::set<std::uint64_t> ids;
  for (std::uint32_t core = 0; core < 4; ++core) {
    Tracer t;
    t.configure(9, 1, 16, core, 2);
    for (int i = 0; i < 100; ++i) {
      const TraceContext ctx = t.mint_root();
      ASSERT_TRUE(ids.insert(ctx.trace_id).second)
          << "collision at core " << core << " mint " << i;
      ASSERT_EQ(ctx.trace_id & 3u, core);
    }
  }
  EXPECT_EQ(ids.size(), 400u);
}

// ---------------------------------------------------------------------------
// Cross-server: one trace id from client HTTP to remote delivery
// ---------------------------------------------------------------------------

app::AppConfig shared_app(const std::string& name = "shared") {
  app::AppConfig cfg;
  cfg.name = name;
  cfg.acl = make_acl({{"u0", Privilege::steer}});
  cfg.step_time = util::milliseconds(5);
  cfg.update_every = 0;  // quiet app: the chat relay is the traffic
  cfg.interact_every = 0;
  return cfg;
}

struct TraceRun {
  std::string near_dump;
  std::string host_dump;
  std::uint64_t near_recorded = 0;
  std::uint64_t host_recorded = 0;
};

TraceRun run_cross_server(std::uint64_t sample_every) {
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  cfg.server_template.peer_flush_delay = util::milliseconds(5);
  cfg.server_template.trace_sample_every = sample_every;
  workload::Scenario scenario(cfg);
  auto& near = scenario.add_server("near", 1);
  auto& host = scenario.add_server("host", 2);
  auto& app = scenario.add_app<app::SyntheticApp>(host, shared_app(),
                                                  app::SyntheticSpec{});
  // Level-1 auth at the near server checks local ACLs: host an identity
  // app there so u0 can log in where the shared app is remote.
  scenario.add_app<app::SyntheticApp>(near, shared_app("identity"),
                                      app::SyntheticSpec{});
  EXPECT_TRUE(scenario.run_until([&] {
    return app.registered() && near.peer_count() == 1 &&
           host.peer_count() == 1;
  }));
  const proto::AppId id = app.app_id();

  auto& alice = scenario.add_client("u0", near);
  EXPECT_TRUE(workload::sync_login(scenario.net(), alice).value().ok);
  EXPECT_TRUE(workload::sync_select(scenario.net(), alice, id).value().ok);
  EXPECT_TRUE(workload::sync_collab_post(scenario.net(), alice, id,
                                         proto::EventKind::chat, "traced hi")
                  .value()
                  .ok);
  scenario.run_for(util::seconds(1));  // outbox flush + host publish
  (void)workload::sync_poll(scenario.net(), alice, id);

  TraceRun out;
  out.near_dump = near.tracer().dump_text();
  out.host_dump = host.tracer().dump_text();
  out.near_recorded = near.tracer().spans_recorded();
  out.host_recorded = host.tracer().spans_recorded();
  return out;
}

TEST(CrossServerTrace, CollabPostSpansBothServersUnderOneTraceId) {
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  cfg.server_template.peer_flush_delay = util::milliseconds(5);
  cfg.server_template.trace_sample_every = 1;  // trace every request
  workload::Scenario scenario(cfg);
  auto& near = scenario.add_server("near", 1);
  auto& host = scenario.add_server("host", 2);
  auto& app = scenario.add_app<app::SyntheticApp>(host, shared_app(),
                                                  app::SyntheticSpec{});
  scenario.add_app<app::SyntheticApp>(near, shared_app("identity"),
                                      app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] {
    return app.registered() && near.peer_count() == 1 &&
           host.peer_count() == 1;
  }));
  const proto::AppId id = app.app_id();

  auto& alice = scenario.add_client("u0", near);
  ASSERT_TRUE(workload::sync_login(scenario.net(), alice).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario.net(), alice, id).value().ok);
  ASSERT_TRUE(workload::sync_collab_post(scenario.net(), alice, id,
                                         proto::EventKind::chat, "traced hi")
                  .value()
                  .ok);
  ASSERT_TRUE(scenario.run_until([&] {
    const auto spans = host.tracer().spans();
    return std::any_of(spans.begin(), spans.end(), [](const auto* s) {
      return s->name == "orb.serve:forward_events";
    });
  }));
  scenario.run_for(util::milliseconds(200));

  // The collab POST span at the near server anchors the trace.
  std::uint64_t collab_trace = 0;
  for (const util::SpanRecord* s : near.tracer().spans()) {
    if (s->name == std::string("http:") + core::kPathCollabPost) {
      collab_trace = s->trace_id;
    }
  }
  ASSERT_NE(collab_trace, 0u);
  // Node 1 minted it (trace ids are node-scoped counters).
  EXPECT_EQ(collab_trace >> 32, near.node().value());

  // The same trace id reaches the host through the peer forward: the ORB
  // tail carries it into dispatch, which records the serve span remotely.
  bool host_has_trace = false;
  bool host_serve_span = false;
  for (const util::SpanRecord* s : host.tracer().spans()) {
    if (s->trace_id != collab_trace) continue;
    host_has_trace = true;
    if (s->name.rfind("orb.serve:", 0) == 0) host_serve_span = true;
    EXPECT_EQ(s->node, host.node().value());
  }
  EXPECT_TRUE(host_has_trace);
  EXPECT_TRUE(host_serve_span);

  // The near server recorded the caller side of the same forward.
  bool near_client_span = false;
  for (const util::SpanRecord* s : near.tracer().spans()) {
    if (s->trace_id == collab_trace && s->name.rfind("orb:", 0) == 0) {
      near_client_span = true;
    }
  }
  EXPECT_TRUE(near_client_span);
}

TEST(CrossServerTrace, SameSeedRunsAreByteIdentical) {
  const TraceRun a = run_cross_server(1);
  const TraceRun b = run_cross_server(1);
  EXPECT_FALSE(a.near_dump.empty());
  EXPECT_FALSE(a.host_dump.empty());
  EXPECT_EQ(a.near_dump, b.near_dump);
  EXPECT_EQ(a.host_dump, b.host_dump);
}

TEST(CrossServerTrace, SampleEveryZeroRecordsNothing) {
  const TraceRun off = run_cross_server(0);
  EXPECT_EQ(off.near_recorded, 0u);
  EXPECT_EQ(off.host_recorded, 0u);
  EXPECT_TRUE(off.near_dump.empty());
  EXPECT_TRUE(off.host_dump.empty());
}

}  // namespace
}  // namespace discover
