#include <gtest/gtest.h>

#include "security/acl.h"
#include "security/rate_limit.h"
#include "security/token.h"

namespace discover::security {
namespace {

TEST(PrivilegeTest, OrderingIsInclusive) {
  EXPECT_TRUE(allows(Privilege::steer, Privilege::read_only));
  EXPECT_TRUE(allows(Privilege::steer, Privilege::read_write));
  EXPECT_TRUE(allows(Privilege::read_write, Privilege::read_only));
  EXPECT_FALSE(allows(Privilege::read_only, Privilege::read_write));
  EXPECT_FALSE(allows(Privilege::none, Privilege::read_only));
  EXPECT_TRUE(allows(Privilege::none, Privilege::none));
}

TEST(AclTest, GrantRevokeLookup) {
  AccessControlList acl;
  acl.grant("alice", Privilege::steer);
  acl.grant("bob", Privilege::read_only);
  EXPECT_EQ(acl.privilege_of("alice"), Privilege::steer);
  EXPECT_EQ(acl.privilege_of("bob"), Privilege::read_only);
  EXPECT_EQ(acl.privilege_of("mallory"), Privilege::none);
  EXPECT_TRUE(acl.knows("alice"));
  EXPECT_FALSE(acl.knows("mallory"));
  acl.revoke("alice");
  EXPECT_EQ(acl.privilege_of("alice"), Privilege::none);
}

TEST(AclTest, RegrantOverwrites) {
  AccessControlList acl;
  acl.grant("alice", Privilege::steer);
  acl.grant("alice", Privilege::read_only);
  EXPECT_EQ(acl.privilege_of("alice"), Privilege::read_only);
  EXPECT_EQ(acl.size(), 1u);
}

TEST(AclTest, PasswordDigestChecked) {
  AccessControlList acl;
  acl.grant("alice", Privilege::steer, digest64("s3cret"));
  acl.grant("bob", Privilege::read_only);  // digest 0 = accept anything
  EXPECT_TRUE(acl.check_password("alice", digest64("s3cret")));
  EXPECT_FALSE(acl.check_password("alice", digest64("wrong")));
  EXPECT_TRUE(acl.check_password("bob", 12345));
  EXPECT_FALSE(acl.check_password("mallory", 0));
}

TEST(AclTest, EntriesRoundTrip) {
  AccessControlList acl(std::vector<AclEntry>{
      {"a", Privilege::steer, 1}, {"b", Privilege::read_only, 0}});
  const auto entries = acl.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(AccessControlList(entries).privilege_of("a"), Privilege::steer);
}

TEST(DigestTest, DeterministicAndSensitive) {
  EXPECT_EQ(digest64("hello"), digest64("hello"));
  EXPECT_NE(digest64("hello"), digest64("hellp"));
  EXPECT_NE(keyed_digest64(1, "x"), keyed_digest64(2, "x"));
  EXPECT_NE(keyed_digest64(1, "x"), keyed_digest64(1, "y"));
}

TEST(TokenTest, IssueVerifyLifecycle) {
  TokenAuthority authority(7, 0xFEED);
  const auto t = authority.issue("alice", 1000, util::seconds(10));
  EXPECT_TRUE(authority.verify(t, 1000).ok());
  EXPECT_TRUE(authority.verify(t, 1000 + util::seconds(9)).ok());
  EXPECT_FALSE(authority.verify(t, 1000 + util::seconds(10)).ok());
}

TEST(TokenTest, TamperedTokenRejected) {
  TokenAuthority authority(7, 0xFEED);
  auto t = authority.issue("alice", 1000, util::seconds(10));
  t.user = "mallory";
  EXPECT_FALSE(authority.verify(t, 1000).ok());

  auto t2 = authority.issue("alice", 1000, util::seconds(10));
  t2.expires_at += util::seconds(1000);
  EXPECT_FALSE(authority.verify(t2, 1000).ok());
}

TEST(TokenTest, LongUsernamesDoNotTruncateIntoCollisions) {
  // The old MAC preimage was snprintf'd into a 128-byte buffer, so two
  // usernames agreeing on the first ~100 bytes MAC-collided: a token for
  // one verified as the other.  Length-prefixed fields must keep them
  // distinct.
  TokenAuthority authority(7, 0xFEED);
  const std::string base(200, 'x');
  const auto t = authority.issue(base + "A", 1000, util::seconds(10));
  ASSERT_TRUE(authority.verify(t, 1000).ok());
  auto forged = t;
  forged.user = base + "B";
  EXPECT_FALSE(authority.verify(forged, 1000).ok());
}

TEST(TokenTest, DelimiterCharactersInUsernameStayUnambiguous) {
  // '|' was the old field delimiter; a user named with one could shift
  // bytes across field boundaries.  It must verify as itself and nothing
  // else.
  TokenAuthority authority(7, 0xFEED);
  const auto t = authority.issue("alice|7", 1000, util::seconds(10));
  EXPECT_TRUE(authority.verify(t, 1000).ok());
  auto forged = t;
  forged.user = "alice";
  EXPECT_FALSE(authority.verify(forged, 1000).ok());
}

TEST(TokenTest, CrossIssuerRejected) {
  TokenAuthority a(1, 0xFEED);
  TokenAuthority b(2, 0xFEED);
  const auto t = a.issue("alice", 0, util::seconds(10));
  EXPECT_FALSE(b.verify(t, 0).ok());
}

TEST(TokenBucketTest, EnforcesRate) {
  TokenBucket bucket(10.0, 10.0);  // 10/s, burst 10
  util::TimePoint now = 0;
  int admitted = 0;
  for (int i = 0; i < 20; ++i) {
    if (bucket.try_consume(now, 1.0)) ++admitted;
  }
  EXPECT_EQ(admitted, 10);  // burst exhausted
  now += util::seconds(1);
  EXPECT_TRUE(bucket.try_consume(now, 1.0));  // refilled
}

TEST(TokenBucketTest, ZeroRateMeansUnlimited) {
  TokenBucket bucket(0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_consume(0, 50.0));
}

TEST(RateLimiterTest, RequestAndByteLimits) {
  AccessPolicy policy;
  policy.max_requests_per_sec = 5;
  policy.max_bytes_per_sec = 1000;
  RateLimiter limiter(policy);
  util::TimePoint now = 0;
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (limiter.admit(now, 100)) ++admitted;
  }
  EXPECT_EQ(admitted, 5);  // request bucket binds first
  EXPECT_EQ(limiter.rejected(), 5u);

  now += util::seconds(10);
  // Byte bucket binds: 1000 bytes/s budget, 600-byte requests.
  int byte_admitted = 0;
  for (int i = 0; i < 4; ++i) {
    if (limiter.admit(now, 600)) ++byte_admitted;
  }
  EXPECT_EQ(byte_admitted, 1);
}

TEST(RateLimiterTest, UnlimitedPolicyAdmitsEverything) {
  RateLimiter limiter(AccessPolicy{});
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(limiter.admit(0, 1 << 20));
  EXPECT_EQ(limiter.rejected(), 0u);
}

}  // namespace
}  // namespace discover::security
