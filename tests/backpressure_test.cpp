// Bounded-FIFO backpressure and admission control (DESIGN.md "Backpressure
// & admission control"):
//  * shed_oldest policy leads the next poll reply with a resync marker
//    (ordering + shed-count payload pinned);
//  * the resync marker travels the exact encode_body(PollReply) wire format
//    through the shared-event encoder;
//  * byte-based FIFO bounds shed independently of the entry cap, and the
//    running byte/entry accounting agrees with a full scan;
//  * disconnect policy drops the slow session instead of shedding;
//  * login admission control: server-wide cap, re-login bypass, rejection
//    racing a concurrent logout;
//  * per-app session cap on select, with re-select bypass.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "app/synthetic.h"
#include "proto/messages.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;
using workload::make_acl;

/// One server, one quiet app (explicit chat posts drive all fan-out), with
/// the backpressure knobs under test.
struct Harness {
  explicit Harness(core::ServerConfig tmpl) {
    workload::ScenarioConfig cfg;
    cfg.server_template = tmpl;
    scenario = std::make_unique<workload::Scenario>(cfg);
    server = &scenario->add_server("hub", 1);
    app::AppConfig app_cfg;
    app_cfg.name = "shared-sim";
    app_cfg.acl = make_acl({{"alice", Privilege::steer},
                            {"bob", Privilege::read_write},
                            {"carol", Privilege::read_write}});
    app_cfg.step_time = util::milliseconds(1);
    app_cfg.update_every = 0;  // quiet: the test drives all traffic
    app_cfg.interact_every = 0;
    app = &scenario->add_app<app::SyntheticApp>(*server, app_cfg,
                                                app::SyntheticSpec{});
    EXPECT_TRUE(scenario->run_until([&] { return app->registered(); }));
    app_id = app->app_id();
  }

  core::DiscoverClient& join(const std::string& user) {
    auto& c = scenario->add_client(user, *server);
    EXPECT_TRUE(workload::sync_login(scenario->net(), c).value().ok);
    EXPECT_TRUE(
        workload::sync_select(scenario->net(), c, app_id).value().ok);
    return c;
  }

  void post_chats(core::DiscoverClient& from, int n,
                  const std::string& prefix = "m") {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(workload::sync_collab_post(scenario->net(), from, app_id,
                                             proto::EventKind::chat,
                                             prefix + std::to_string(i))
                      .value().ok);
    }
    scenario->run_for(util::milliseconds(5));
  }

  std::unique_ptr<workload::Scenario> scenario;
  core::DiscoverServer* server = nullptr;
  app::SyntheticApp* app = nullptr;
  proto::AppId app_id;
};

// ---------------------------------------------------------------------------
// shed_oldest: resync marker ordering and payload
// ---------------------------------------------------------------------------

TEST(Backpressure, ShedOldestLeadsPollReplyWithResyncMarkerThenSurvivors) {
  core::ServerConfig cfg;
  cfg.client_fifo_cap = 4;
  Harness h(cfg);
  auto& alice = h.join("alice");
  auto& bob = h.join("bob");
  h.post_chats(alice, 10);  // bob never drains: 6 of 10 shed

  const auto poll = workload::sync_poll(h.scenario->net(), bob, h.app_id);
  ASSERT_TRUE(poll.ok());
  ASSERT_TRUE(poll.value().ok);
  const auto& events = poll.value().events;
  ASSERT_EQ(events.size(), 5u);  // marker + 4 survivors
  // The marker leads the reply, carries the shed count, and names the app.
  EXPECT_EQ(events.front().kind, proto::EventKind::resync);
  EXPECT_EQ(events.front().app, h.app_id);
  EXPECT_EQ(events.front().value,
            proto::ParamValue{static_cast<std::int64_t>(6)});
  // Survivors are the NEWEST events, still in sequence order.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].kind, proto::EventKind::chat);
    EXPECT_EQ(events[i].text, "m" + std::to_string(i + 5));
    if (i > 1) {
      EXPECT_GT(events[i].seq, events[i - 1].seq);
    }
  }
  EXPECT_GE(h.server->stats().events_dropped, 6u);
  EXPECT_EQ(h.server->stats().resync_markers, 1u);
  EXPECT_EQ(h.server->stats().overflow_disconnects, 0u);

  // The marker is one-shot: a clean follow-up poll carries no resync.
  const auto again = workload::sync_poll(h.scenario->net(), bob, h.app_id);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().events.empty());
  EXPECT_EQ(h.server->stats().resync_markers, 1u);
}

TEST(Backpressure, ResyncMarkerUsesExactPollReplyWireFormat) {
  // The servlet serializes the synthesized marker through
  // encode_poll_reply_shared; pin that a marker-bearing batch is
  // byte-identical to encode_body(PollReply) and round-trips.
  proto::ClientEvent marker;
  marker.kind = proto::EventKind::resync;
  marker.app = proto::AppId{3, 1};
  marker.at = 1234;
  marker.text = "events shed by server backpressure; resync via archive";
  marker.value = proto::ParamValue{static_cast<std::int64_t>(7)};
  proto::ClientEvent survivor;
  survivor.kind = proto::EventKind::chat;
  survivor.seq = 9;
  survivor.app = marker.app;
  survivor.user = "alice";
  survivor.text = "m9";

  proto::PollReply plain;
  plain.ok = true;
  plain.events = {marker, survivor};
  plain.backlog = 0;
  const std::vector<proto::SharedClientEvent> shared = {
      std::make_shared<const proto::ClientEvent>(marker),
      std::make_shared<const proto::ClientEvent>(survivor)};

  const util::Bytes a = proto::encode_body(plain);
  const util::Bytes b = proto::encode_poll_reply_shared(true, "", shared, 0);
  EXPECT_EQ(a, b);

  const proto::PollReply decoded = proto::decode_poll_reply(b);
  ASSERT_EQ(decoded.events.size(), 2u);
  EXPECT_EQ(decoded.events[0], marker);
  EXPECT_EQ(decoded.events[1], survivor);
}

// ---------------------------------------------------------------------------
// Byte-bounded FIFOs and accounting
// ---------------------------------------------------------------------------

TEST(Backpressure, ByteBoundShedsWithUnlimitedEntryCap) {
  core::ServerConfig cfg;
  cfg.client_fifo_cap = 0;  // entries unbounded: only bytes constrain
  cfg.client_fifo_max_bytes = 2048;
  Harness h(cfg);
  auto& alice = h.join("alice");
  auto& bob = h.join("bob");
  // Each chat carries a 256-byte payload, so a FIFO holds only a handful.
  const std::string big(256, 'x');
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(workload::sync_collab_post(h.scenario->net(), alice, h.app_id,
                                           proto::EventKind::chat,
                                           big + std::to_string(i))
                    .value().ok);
  }
  h.scenario->run_for(util::milliseconds(5));

  // Per-subscriber byte bound holds for both idle FIFOs (alice's echoes
  // pile up too), so the total is bounded by 2 * max_bytes.
  EXPECT_GT(h.server->stats().events_dropped, 0u);
  EXPECT_LE(h.server->total_fifo_backlog_bytes(), 2u * 2048u);
  EXPECT_GT(h.server->stats().peak_fifo_backlog_bytes, 0u);
  EXPECT_GT(h.server->stats().peak_fifo_backlog, 0u);

  const auto poll = workload::sync_poll(h.scenario->net(), bob, h.app_id);
  ASSERT_TRUE(poll.value().ok);
  ASSERT_FALSE(poll.value().events.empty());
  EXPECT_EQ(poll.value().events.front().kind, proto::EventKind::resync);

  // Accounting oracle: once every FIFO drains, the scans read zero.
  (void)workload::sync_poll(h.scenario->net(), alice, h.app_id);
  (void)workload::sync_poll(h.scenario->net(), bob, h.app_id);
  EXPECT_EQ(h.server->total_fifo_backlog(), 0u);
  EXPECT_EQ(h.server->total_fifo_backlog_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// disconnect policy
// ---------------------------------------------------------------------------

TEST(Backpressure, DisconnectPolicyDropsSlowSessionInsteadOfShedding) {
  core::ServerConfig cfg;
  cfg.client_fifo_cap = 3;
  cfg.fifo_overflow = core::FifoOverflowPolicy::disconnect;
  Harness h(cfg);
  auto& alice = h.join("alice");
  auto& bob = h.join("bob");
  // Alice drains her own echoes between posts; bob never polls and blows
  // through his 3-entry cap on the 4th chat.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(workload::sync_collab_post(h.scenario->net(), alice, h.app_id,
                                           proto::EventKind::chat,
                                           "m" + std::to_string(i))
                    .value().ok);
    (void)workload::sync_poll(h.scenario->net(), alice, h.app_id);
  }
  h.scenario->run_for(util::milliseconds(5));

  EXPECT_EQ(h.server->stats().overflow_disconnects, 1u);
  EXPECT_EQ(h.server->stats().resync_markers, 0u);
  // Bob's session is gone: his next poll is an application-level failure.
  const auto poll = workload::sync_poll(h.scenario->net(), bob, h.app_id);
  ASSERT_TRUE(poll.ok());
  EXPECT_FALSE(poll.value().ok);
  // His FIFO was forgotten wholesale — the accounting scans agree.
  EXPECT_EQ(h.server->total_fifo_backlog(), 0u);
  EXPECT_EQ(h.server->total_fifo_backlog_bytes(), 0u);
  // Alice is untouched.
  const auto ap = workload::sync_poll(h.scenario->net(), alice, h.app_id);
  EXPECT_TRUE(ap.value().ok);
}

// ---------------------------------------------------------------------------
// Admission control: server-wide session cap
// ---------------------------------------------------------------------------

TEST(Backpressure, ServerSessionCapRejectsNewLoginButNotReLogin) {
  core::ServerConfig cfg;
  cfg.max_sessions = 2;
  cfg.admission_retry_after = util::seconds(3);
  Harness h(cfg);
  auto& alice = h.join("alice");
  auto& bob = h.join("bob");
  (void)bob;

  // The server is full: a third principal bounces with a typed error.
  auto& carol = h.scenario->add_client("carol", *h.server);
  const auto rejected = workload::sync_login(h.scenario->net(), carol);
  ASSERT_TRUE(rejected.ok()) << rejected.error().message;
  EXPECT_FALSE(rejected.value().ok);
  EXPECT_EQ(rejected.value().admission, proto::AdmissionError::server_sessions);
  EXPECT_EQ(rejected.value().retry_after, util::seconds(3));
  EXPECT_EQ(h.server->stats().admission_rejected_logins, 1u);

  // Re-login of an existing session does not consume a new slot (flash
  // crowd: browser refreshes must not evict the user).
  const auto relogin = workload::sync_login(h.scenario->net(), alice);
  ASSERT_TRUE(relogin.ok());
  EXPECT_TRUE(relogin.value().ok);
  EXPECT_EQ(h.server->stats().admission_rejected_logins, 1u);

  // Capacity freed by a logout admits the waiting client.
  bool out = false;
  bob.logout([&](util::Result<proto::CollabAck>) { out = true; });
  ASSERT_TRUE(workload::wait_for(h.scenario->net(), [&] { return out; }));
  EXPECT_TRUE(workload::sync_login(h.scenario->net(), carol).value().ok);
}

TEST(Backpressure, AdmissionRejectionRacingConcurrentLogout) {
  core::ServerConfig cfg;
  cfg.max_sessions = 1;
  cfg.admission_retry_after = util::milliseconds(200);
  Harness h(cfg);
  auto& alice = h.join("alice");

  // Carol's login races alice's logout in the same sim instant.  Delivery
  // order is deterministic (login first): carol bounces off the still-held
  // slot, then the logout lands, and the typed retry-after is exactly long
  // enough for the retry to find a free server.
  auto& carol = h.scenario->add_client("carol", *h.server);
  util::Result<proto::LoginReply> first =
      util::Error{util::Errc::internal, "pending"};
  bool login_done = false;
  bool logout_done = false;
  carol.login([&](util::Result<proto::LoginReply> r) {
    first = std::move(r);
    login_done = true;
  });
  alice.logout([&](util::Result<proto::CollabAck>) { logout_done = true; });
  ASSERT_TRUE(workload::wait_for(h.scenario->net(),
                                 [&] { return login_done && logout_done; }));

  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().ok);
  EXPECT_EQ(first.value().admission, proto::AdmissionError::server_sessions);
  EXPECT_EQ(h.server->stats().admission_rejected_logins, 1u);

  // Honouring the server's retry-after succeeds post-logout.
  h.scenario->run_for(first.value().retry_after);
  EXPECT_TRUE(workload::sync_login(h.scenario->net(), carol).value().ok);
  EXPECT_EQ(h.server->stats().admission_rejected_logins, 1u);
}

// ---------------------------------------------------------------------------
// Admission control: per-app session cap
// ---------------------------------------------------------------------------

TEST(Backpressure, PerAppCapRejectsSelectButNotReSelect) {
  core::ServerConfig cfg;
  cfg.max_sessions_per_app = 1;
  cfg.admission_retry_after = util::seconds(1);
  Harness h(cfg);
  auto& alice = h.join("alice");  // takes the app's single slot

  auto& bob = h.scenario->add_client("bob", *h.server);
  ASSERT_TRUE(workload::sync_login(h.scenario->net(), bob).value().ok);
  const auto rejected =
      workload::sync_select(h.scenario->net(), bob, h.app_id);
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(rejected.value().ok);
  EXPECT_EQ(rejected.value().admission, proto::AdmissionError::app_sessions);
  EXPECT_EQ(rejected.value().retry_after, util::seconds(1));
  EXPECT_EQ(h.server->stats().admission_rejected_selects, 1u);

  // Re-selecting an app the session already subscribes to is idempotent
  // and exempt from the cap.
  EXPECT_TRUE(
      workload::sync_select(h.scenario->net(), alice, h.app_id).value().ok);
  EXPECT_EQ(h.server->stats().admission_rejected_selects, 1u);

  // Alice leaving frees the slot for bob.
  bool out = false;
  alice.logout([&](util::Result<proto::CollabAck>) { out = true; });
  ASSERT_TRUE(workload::wait_for(h.scenario->net(), [&] { return out; }));
  EXPECT_TRUE(
      workload::sync_select(h.scenario->net(), bob, h.app_id).value().ok);
}

}  // namespace
}  // namespace discover
