// Unit tests for the retry/backoff policy and the ORB + HTTP request
// deduplication that makes retries safe for non-idempotent operations.
#include <gtest/gtest.h>

#include <memory>

#include "net/retry.h"
#include "net/sim_network.h"
#include "orb/orb.h"
#include "util/rng.h"

namespace discover {
namespace {

// ---------------------------------------------------------------------------
// Backoff schedule
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, DisabledByDefault) {
  net::RetryPolicy p;
  EXPECT_EQ(p.max_attempts, 1u);
  EXPECT_FALSE(p.enabled());
}

TEST(RetryPolicyTest, BackoffGrowsGeometricallyAndSaturates) {
  net::RetryPolicy p;
  p.max_attempts = 8;
  p.initial_backoff = util::milliseconds(100);
  p.multiplier = 2.0;
  p.max_backoff = util::milliseconds(500);
  util::Rng rng(1);
  EXPECT_EQ(p.backoff_after(1, rng), util::milliseconds(100));
  EXPECT_EQ(p.backoff_after(2, rng), util::milliseconds(200));
  EXPECT_EQ(p.backoff_after(3, rng), util::milliseconds(400));
  // Capped from here on: 800 -> 500, and it stays at the cap.
  EXPECT_EQ(p.backoff_after(4, rng), util::milliseconds(500));
  EXPECT_EQ(p.backoff_after(20, rng), util::milliseconds(500));
}

TEST(RetryPolicyTest, JitterStaysWithinBounds) {
  net::RetryPolicy p;
  p.max_attempts = 4;
  p.initial_backoff = util::milliseconds(100);
  p.max_backoff = util::seconds(2);
  p.jitter = 0.5;  // factor in [0.75, 1.25]
  util::Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const util::Duration d = p.backoff_after(1, rng);
    EXPECT_GE(d, util::milliseconds(75));
    EXPECT_LE(d, util::milliseconds(125));
  }
}

TEST(RetryPolicyTest, JitterIsDeterministicPerSeed) {
  net::RetryPolicy p;
  p.max_attempts = 4;
  p.jitter = 0.5;
  util::Rng a(7);
  util::Rng b(7);
  for (std::uint32_t i = 1; i < 10; ++i) {
    EXPECT_EQ(p.backoff_after(i, a), p.backoff_after(i, b));
  }
}

// ---------------------------------------------------------------------------
// ORB retry + deduplication
// ---------------------------------------------------------------------------

class CountingServant : public orb::Servant {
 public:
  [[nodiscard]] std::string interface_name() const override {
    return "Counter";
  }
  void dispatch(const std::string& method, wire::Decoder& args,
                wire::Encoder& out, orb::DispatchContext& ctx) override {
    (void)args;
    (void)ctx;
    if (method == "bump") {
      ++calls;
      out.u64(calls);
    } else {
      throw orb::OrbException{util::Errc::invalid_argument, "no " + method};
    }
  }
  std::uint64_t calls = 0;
};

class OrbNode : public net::MessageHandler {
 public:
  explicit OrbNode(net::Network& net) : network_(net) {}
  void init(net::NodeId self) {
    orb = std::make_unique<orb::Orb>(network_, self);
  }
  void on_message(const net::Message& msg) override { orb->handle(msg); }
  net::Network& network_;
  std::unique_ptr<orb::Orb> orb;
};

struct OrbPair {
  net::SimNetwork net;
  OrbNode caller{net};
  OrbNode callee{net};
  net::NodeId nc{0};
  net::NodeId ns{0};
  std::shared_ptr<CountingServant> servant = std::make_shared<CountingServant>();
  orb::ObjectRef ref;

  explicit OrbPair(util::Duration latency) {
    net.set_lan_model({latency, 1e9});
    nc = net.add_node("caller", &caller);
    ns = net.add_node("callee", &callee);
    caller.init(nc);
    callee.init(ns);
    ref = callee.orb->activate(servant);
  }
};

TEST(OrbRetryTest, RetriedCallWithLateOriginalReplyDeliversOnce) {
  // RTT is 2 ms but the per-attempt timeout is 1 ms: attempt 1 times out
  // while its reply is still in flight, a retransmission goes out, and BOTH
  // replies eventually arrive.  The caller must fire its callback exactly
  // once and the servant must execute exactly once (the retransmission is
  // answered from the callee's reply cache).
  OrbPair p(util::milliseconds(1));
  net::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = util::microseconds(100);
  p.caller.orb->set_retry_policy(policy);

  int callbacks = 0;
  util::Result<util::Bytes> last = util::Error{util::Errc::internal, "unset"};
  p.net.post(p.nc, [&] {
    p.caller.orb->invoke(p.ref, "bump", wire::Encoder{},
                         [&](util::Result<util::Bytes> r) {
                           ++callbacks;
                           last = std::move(r);
                         },
                         util::milliseconds(1));
  });
  p.net.run_until_idle();

  EXPECT_EQ(callbacks, 1);
  EXPECT_TRUE(last.ok());
  EXPECT_EQ(p.servant->calls, 1u);
  EXPECT_GE(p.caller.orb->retries(), 1u);
  EXPECT_GE(p.callee.orb->dedup_hits(), 1u);
  EXPECT_EQ(p.caller.orb->pending_calls(), 0u);
}

TEST(OrbRetryTest, RetrySpansAPartitionAndSucceeds) {
  OrbPair p(util::milliseconds(1));
  net::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff = util::milliseconds(50);
  policy.max_backoff = util::milliseconds(200);
  p.caller.orb->set_retry_policy(policy);

  p.net.partition(p.nc, p.ns);
  // Heal while the retry loop is still backing off.
  p.net.schedule(p.ns, util::milliseconds(150),
                 [&] { p.net.heal(p.nc, p.ns); });

  int callbacks = 0;
  bool ok = false;
  p.net.post(p.nc, [&] {
    p.caller.orb->invoke(p.ref, "bump", wire::Encoder{},
                         [&](util::Result<util::Bytes> r) {
                           ++callbacks;
                           ok = r.ok();
                         },
                         util::milliseconds(30));
  });
  p.net.run_until_idle();

  EXPECT_EQ(callbacks, 1);
  EXPECT_TRUE(ok);
  EXPECT_EQ(p.servant->calls, 1u);
  EXPECT_GT(p.net.fault_stats().partition_drops, 0u);
}

TEST(OrbRetryTest, ExhaustedRetriesReportTimeout) {
  OrbPair p(util::milliseconds(1));
  net::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = util::milliseconds(10);
  p.caller.orb->set_retry_policy(policy);

  p.net.partition(p.nc, p.ns);  // never healed
  util::Errc code = util::Errc::ok;
  p.net.post(p.nc, [&] {
    p.caller.orb->invoke(p.ref, "bump", wire::Encoder{},
                         [&](util::Result<util::Bytes> r) {
                           code = r.ok() ? util::Errc::ok : r.error().code;
                         },
                         util::milliseconds(5));
  });
  p.net.run_until_idle();
  EXPECT_EQ(code, util::Errc::timeout);
  EXPECT_EQ(p.servant->calls, 0u);
  EXPECT_EQ(p.caller.orb->retries(), 2u);  // attempts 2 and 3
}

TEST(OrbRetryTest, NetworkDuplicatedRequestExecutesOnce) {
  // Even without retries, a transport-level duplicate of a request must not
  // re-execute the servant: the reply cache replays the original answer.
  OrbPair p(util::milliseconds(1));
  net::FaultPlan dup;
  dup.duplicate_prob = 1.0;  // every message is doubled
  p.net.set_lan_faults(dup);

  int callbacks = 0;
  p.net.post(p.nc, [&] {
    p.caller.orb->invoke(p.ref, "bump", wire::Encoder{},
                         [&](util::Result<util::Bytes>) { ++callbacks; },
                         util::seconds(1));
  });
  p.net.run_until_idle();
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(p.servant->calls, 1u);
  EXPECT_GE(p.callee.orb->dedup_hits(), 1u);
}

}  // namespace
}  // namespace discover
