#include <gtest/gtest.h>

#include "db/record_store.h"

namespace discover::db {
namespace {

TEST(RecordStoreTest, InsertAndRead) {
  RecordStore store;
  Table& t = store.table("results");
  const RecordId id = t.insert("alice", 100, {{"x", std::int64_t{42}}});
  auto r = t.read(id, "alice");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::get<std::int64_t>(r.value().fields.at("x")), 42);
  EXPECT_EQ(r.value().owner, "alice");
  EXPECT_EQ(r.value().created_at, 100);
}

TEST(RecordStoreTest, NonOwnerCannotReadWithoutGrant) {
  RecordStore store;
  Table& t = store.table("results");
  const RecordId id = t.insert("alice", 0, {});
  EXPECT_FALSE(t.read(id, "bob").ok());
  ASSERT_TRUE(t.grant_read(id, "bob").ok());
  EXPECT_TRUE(t.read(id, "bob").ok());
}

TEST(RecordStoreTest, GrantIsReadOnly) {
  // Paper §6.3: other clients get read-only rights; they may never write.
  RecordStore store;
  Table& t = store.table("results");
  const RecordId id = t.insert("alice", 0, {{"v", 1.0}});
  ASSERT_TRUE(t.grant_read(id, "bob").ok());
  const auto s = t.update(id, "bob", {{"v", 2.0}});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, util::Errc::permission_denied);
  EXPECT_FALSE(t.remove(id, "bob").ok());
  // Owner can.
  EXPECT_TRUE(t.update(id, "alice", {{"v", 2.0}}).ok());
  EXPECT_DOUBLE_EQ(std::get<double>(t.read(id, "alice").value()
                                        .fields.at("v")),
                   2.0);
}

TEST(RecordStoreTest, QueryFiltersByPredicateAndVisibility) {
  RecordStore store;
  Table& t = store.table("runs");
  for (int i = 0; i < 10; ++i) {
    const RecordId id = t.insert(i % 2 == 0 ? "alice" : "bob", i,
                                 {{"i", static_cast<std::int64_t>(i)}});
    (void)id;
  }
  Predicate p;
  p.field = "i";
  p.op = Predicate::Op::ge;
  p.literal = std::int64_t{5};
  const auto alice_sees = t.query("alice", {p});
  // Alice owns even i: 6, 8 are >= 5.
  EXPECT_EQ(alice_sees.size(), 2u);
}

TEST(RecordStoreTest, PredicateOperators) {
  Record r;
  r.fields["x"] = std::int64_t{5};
  const auto check = [&](Predicate::Op op, Value lit) {
    Predicate p;
    p.field = "x";
    p.op = op;
    p.literal = std::move(lit);
    return p.matches(r);
  };
  EXPECT_TRUE(check(Predicate::Op::eq, std::int64_t{5}));
  EXPECT_TRUE(check(Predicate::Op::ne, std::int64_t{4}));
  EXPECT_TRUE(check(Predicate::Op::lt, std::int64_t{6}));
  EXPECT_TRUE(check(Predicate::Op::le, std::int64_t{5}));
  EXPECT_TRUE(check(Predicate::Op::gt, std::int64_t{4}));
  EXPECT_TRUE(check(Predicate::Op::ge, std::int64_t{5}));
  // Mixed int/double compares numerically.
  EXPECT_TRUE(check(Predicate::Op::eq, 5.0));
  EXPECT_TRUE(check(Predicate::Op::lt, 5.5));
  // Cross-type string comparison: eq false, ne true.
  EXPECT_FALSE(check(Predicate::Op::eq, std::string("5")));
  EXPECT_TRUE(check(Predicate::Op::ne, std::string("5")));
}

TEST(RecordStoreTest, MissingFieldOnlyMatchesNe) {
  Record r;
  Predicate p;
  p.field = "absent";
  p.op = Predicate::Op::eq;
  p.literal = 1.0;
  EXPECT_FALSE(p.matches(r));
  p.op = Predicate::Op::ne;
  EXPECT_TRUE(p.matches(r));
}

TEST(RecordStoreTest, TablesAreIndependent) {
  RecordStore store;
  store.table("a").insert("u", 0, {});
  store.table("b").insert("u", 0, {});
  store.table("b").insert("u", 0, {});
  EXPECT_EQ(store.table("a").size(), 1u);
  EXPECT_EQ(store.table("b").size(), 2u);
  EXPECT_EQ(store.table_names().size(), 2u);
  EXPECT_EQ(store.find_table("missing"), nullptr);
}

TEST(RecordStoreTest, ValueToString) {
  EXPECT_EQ(value_to_string(Value{std::int64_t{7}}), "7");
  EXPECT_EQ(value_to_string(Value{2.5}), "2.5");
  EXPECT_EQ(value_to_string(Value{std::string("x")}), "x");
}

}  // namespace
}  // namespace discover::db
