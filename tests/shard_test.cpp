// Sharded multi-core server core (DESIGN.md §5i):
//  * routing — the app-affinity hashes are pure, stable and in range, and
//    every minted app id routes back to the core that minted it;
//  * shard pool — tasks run on their own worker, wait_idle drains, posts
//    after stop are dropped instead of queued into a dead pool;
//  * sharded counters — concurrent increments from many threads are never
//    lost (the satellite regression test for the shard-safe registry);
//  * Sim clamp — shard_count > 1 on the single-threaded Sim backend is
//    ignored and a fixed-seed scenario stays byte-identical to
//    shard_count = 1;
//  * end-to-end — a shard_count = 4 server on the ThreadNetwork serves
//    login/select/collab/steering/history across cores, the merged
//    /metrics scrape sums per-core registries, and stats_sum() adds up.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "app/heat2d.h"
#include "app/synthetic.h"
#include "core/server.h"
#include "http/http_message.h"
#include "net/shard_pool.h"
#include "util/metrics.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"
#include "workload/thread_scenario.h"

namespace discover {
namespace {

using core::DiscoverServer;
using security::Privilege;
using workload::make_acl;

// ---------------------------------------------------------------------------
// Affinity routing properties
// ---------------------------------------------------------------------------

TEST(ShardRouting, NodeAffinityIsStableAndInRange) {
  for (const std::uint32_t shards : {1u, 2u, 3u, 4u, 8u, 16u}) {
    for (std::uint32_t node = 0; node < 4096; ++node) {
      const std::uint32_t shard = DiscoverServer::shard_of_node(node, shards);
      ASSERT_LT(shard, shards);
      // Pure function of (node, shards): the same pair always routes to the
      // same core, so a session's traffic never migrates.
      ASSERT_EQ(shard, DiscoverServer::shard_of_node(node, shards));
    }
    if (shards == 1) continue;
    // The multiplicative hash actually spreads nodes: no shard is empty
    // over the first 4096 node ids.
    std::set<std::uint32_t> seen;
    for (std::uint32_t node = 0; node < 4096; ++node) {
      seen.insert(DiscoverServer::shard_of_node(node, shards));
    }
    EXPECT_EQ(seen.size(), shards);
  }
}

TEST(ShardRouting, MintedAppIdsRouteBackToTheirMintingCore) {
  for (const std::uint32_t shards : {2u, 3u, 4u, 8u}) {
    std::uint32_t bits = 0;
    while ((1u << bits) < shards) ++bits;
    for (std::uint32_t core = 0; core < shards; ++core) {
      for (std::uint64_t counter = 1; counter <= 256; ++counter) {
        proto::AppId id;
        id.host = 1;
        id.local = (counter << bits) | core;
        ASSERT_EQ(DiscoverServer::shard_of_app(id, bits, shards), core)
            << "shards=" << shards << " core=" << core
            << " counter=" << counter;
      }
    }
  }
  // bits = 0 is the unsharded minting format: everything owned by core 0.
  proto::AppId legacy;
  legacy.host = 1;
  legacy.local = 12345;
  EXPECT_EQ(DiscoverServer::shard_of_app(legacy, 0, 4), 0u);
}

TEST(ShardRouting, AppAndSessionPairsRouteStably) {
  // The pair (app owner, client shard) that a request touches is a pure
  // function of the app id and the client node — re-deriving it any number
  // of times gives the same hop.
  constexpr std::uint32_t kShards = 4;
  constexpr std::uint32_t kBits = 2;
  for (std::uint32_t client_node = 0; client_node < 512; ++client_node) {
    for (std::uint64_t local = 1; local < 64; ++local) {
      proto::AppId id;
      id.host = 7;
      id.local = local;
      const auto owner = DiscoverServer::shard_of_app(id, kBits, kShards);
      const auto client =
          DiscoverServer::shard_of_node(client_node, kShards);
      for (int rep = 0; rep < 3; ++rep) {
        ASSERT_EQ(DiscoverServer::shard_of_app(id, kBits, kShards), owner);
        ASSERT_EQ(DiscoverServer::shard_of_node(client_node, kShards),
                  client);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Shard pool
// ---------------------------------------------------------------------------

TEST(ShardPool, TasksRunOnTheirOwnWorker) {
  net::ShardPool pool(4);
  pool.start();
  std::atomic<int> done{0};
  std::array<std::size_t, 4> observed{};
  for (std::size_t i = 0; i < 4; ++i) {
    pool.post(i, [&observed, &done, i] {
      observed[i] = net::ShardPool::current_shard();
      ++done;
    });
  }
  ASSERT_TRUE(pool.wait_idle(util::seconds(5)));
  EXPECT_EQ(done.load(), 4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(observed[i], i);
  // Off-pool threads have no shard.
  EXPECT_EQ(net::ShardPool::current_shard(), net::ShardPool::kNotAShard);
  pool.stop();
}

TEST(ShardPool, PostsAfterStopAreDroppedAndWaitIdleStillReturns) {
  net::ShardPool pool(2);
  pool.start();
  pool.stop();
  std::atomic<bool> ran{false};
  pool.post(0, [&ran] { ran = true; });
  EXPECT_TRUE(pool.wait_idle(util::seconds(1)));
  EXPECT_FALSE(ran.load());
}

// ---------------------------------------------------------------------------
// Shard-safe counters (satellite: concurrent increments are never lost)
// ---------------------------------------------------------------------------

TEST(ShardedCounter, ConcurrentIncrementsAreNeverLost) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  util::ShardedCounter counter(4);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        // Half the increments land on the thread's own slot, half pile onto
        // slot 0 — exactness must hold even with slot contention.
        counter.inc(t % 4);
        counter.inc(0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread * 2);
}

TEST(ShardedCounter, RegistryScrapeSeesTheExactSum) {
  util::MetricsRegistry reg;
  util::ShardedCounter& c = reg.sharded_counter("routed", 4);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < 10000; ++i) c.inc(t);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter_value("routed"), 40000u);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.count("routed"), 1u);
  EXPECT_EQ(snap.counters.at("routed"), 40000u);
}

TEST(ShardedCounter, MergeSumsPerCoreSnapshots) {
  util::MetricsRegistry a;
  util::MetricsRegistry b;
  a.counter("hits") = 3;
  b.counter("hits") = 4;
  b.counter("only_b") = 1;
  const auto merged =
      util::MetricsRegistry::merge({a.snapshot(), b.snapshot()});
  EXPECT_EQ(merged.counters.at("hits"), 7u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  // The merged exposition renders through the same golden-stable path.
  EXPECT_NE(util::MetricsRegistry::render_prometheus(merged).find(
                "# TYPE hits counter\nhits 7\n"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Sim clamp: shard_count is ignored on the deterministic backend
// ---------------------------------------------------------------------------

std::string sim_fingerprint(std::uint32_t shard_count) {
  workload::ScenarioConfig cfg;
  cfg.server_template.shard_count = shard_count;
  workload::Scenario scenario(cfg);
  auto& server = scenario.add_server("sim", 1);

  app::AppConfig app_cfg;
  app_cfg.name = "clamped";
  app_cfg.acl = make_acl({{"alice", Privilege::steer}});
  app_cfg.step_time = util::milliseconds(1);
  app_cfg.update_every = 4;
  app_cfg.interact_every = 8;
  app_cfg.interaction_window = util::milliseconds(1);
  auto& app = scenario.add_app<app::SyntheticApp>(server, app_cfg,
                                                  app::SyntheticSpec{});
  scenario.run_until([&] { return app.registered(); });

  auto& alice = scenario.add_client("alice", server);
  (void)workload::sync_onboard_steerer(scenario.net(), alice, app.app_id());
  (void)workload::sync_command(scenario.net(), alice, app.app_id(),
                               proto::CommandKind::set_param, "p0",
                               proto::ParamValue{1.5});
  (void)workload::sync_collab_post(scenario.net(), alice, app.app_id(),
                                   proto::EventKind::chat, "hi");
  scenario.run_for(util::milliseconds(300));
  (void)workload::sync_poll(scenario.net(), alice, app.app_id());

  std::ostringstream fp;
  fp << "app=" << app.app_id().to_string() << ";";
  for (const auto& ev : alice.received_events()) {
    fp << ev.seq << "/" << static_cast<int>(ev.kind) << "/" << ev.at << ",";
  }
  const auto& st = server.stats();
  fp << ";" << st.updates_processed << "|" << st.events_delivered << "|"
     << st.commands_accepted << "|" << st.collab_posts << "|"
     << st.polls_served;
  const auto traffic = scenario.net().traffic();
  fp << ";" << traffic.messages << "/" << traffic.bytes;
  fp << "@" << scenario.net().now();
  return fp.str();
}

TEST(ShardSimClamp, FixedSeedScenarioIsByteIdenticalAtAnyShardCount) {
  const std::string base = sim_fingerprint(1);
  EXPECT_FALSE(base.empty());
  EXPECT_EQ(base, sim_fingerprint(4));
  EXPECT_EQ(base, sim_fingerprint(8));
}

// ---------------------------------------------------------------------------
// End-to-end on the ThreadNetwork at shard_count = 4
// ---------------------------------------------------------------------------

// Bare node that fires one HTTP request and keeps the parsed response.
class RawScrapeClient : public net::MessageHandler {
 public:
  void on_message(const net::Message& msg) override {
    auto parsed = http::parse_response(msg.payload);
    if (!parsed.ok()) return;
    body = std::string(parsed.value().body.begin(),
                       parsed.value().body.end());
    last_status = parsed.value().status;
  }
  std::atomic<int> last_status{0};
  std::string body;
};

TEST(ShardedThreadServer, EndToEndAcrossCores) {
  constexpr std::uint32_t kShards = 4;
  constexpr int kApps = 6;
  core::ServerConfig tmpl;
  tmpl.shard_count = kShards;
  workload::ThreadScenario scenario(tmpl);
  auto& server = scenario.add_server("sharded");

  std::vector<app::Heat2DApp*> apps;
  for (int i = 0; i < kApps; ++i) {
    app::AppConfig cfg;
    cfg.name = "app" + std::to_string(i);
    cfg.acl = make_acl({{"alice", Privilege::steer},
                        {"carol", Privilege::read_only}});
    cfg.step_time = util::milliseconds(1);
    cfg.update_every = 5;
    cfg.interact_every = 10;
    cfg.interaction_window = util::milliseconds(1);
    apps.push_back(&scenario.add_app<app::Heat2DApp>(server, cfg, 12));
  }
  core::ClientConfig ccfg;
  ccfg.poll_period = util::milliseconds(10);
  auto& alice = scenario.add_client("alice", server, ccfg);
  auto& carol = scenario.add_client("carol", server, ccfg);

  RawScrapeClient metrics_raw;
  const net::NodeId metrics_node =
      scenario.net().add_node("raw:metrics", &metrics_raw);
  RawScrapeClient trace_raw;
  const net::NodeId trace_node =
      scenario.net().add_node("raw:trace", &trace_raw);

  scenario.start();
  ASSERT_TRUE(server.sharded());
  ASSERT_EQ(server.shard_count(), kShards);
  ASSERT_TRUE(workload::wait_for(
      scenario.net(),
      [&] {
        for (const auto* a : apps) {
          if (!a->registered()) return false;
        }
        return true;
      },
      util::seconds(30)));

  // Login gathers ACLs and the app directory from every core.
  auto login = workload::sync_login(scenario.net(), alice);
  ASSERT_TRUE(login.ok()) << login.error().message;
  ASSERT_TRUE(login.value().ok);
  ASSERT_EQ(login.value().applications.size(),
            static_cast<std::size_t>(kApps));

  // Selects and collab posts hit local and cross-shard owners alike.
  for (const auto& info : login.value().applications) {
    auto sel = workload::sync_select(scenario.net(), alice, info.id);
    ASSERT_TRUE(sel.ok()) << sel.error().message;
    ASSERT_TRUE(sel.value().ok) << sel.value().message;
    EXPECT_EQ(sel.value().privilege, Privilege::steer);
    auto post = workload::sync_collab_post(scenario.net(), alice, info.id,
                                           proto::EventKind::chat, "hello");
    ASSERT_TRUE(post.ok());
    EXPECT_TRUE(post.value().ok) << post.value().message;
  }

  // Full steering flow against one app: lock acquire, command, effect.
  app::Heat2DApp& steered = *apps[0];
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario.net(), alice,
                                             steered.app_id()));
  auto ack = workload::sync_command(scenario.net(), alice, steered.app_id(),
                                    proto::CommandKind::set_param, "alpha",
                                    proto::ParamValue{0.21});
  ASSERT_TRUE(ack.ok());
  EXPECT_TRUE(ack.value().accepted) << ack.value().message;
  // Read alpha on the app's own worker (actor model): the command is
  // applied there, so a cross-thread read of the raw member would race.
  const auto read_alpha = [&] {
    std::promise<double> p;
    scenario.net().post(steered.node(),
                        [&] { p.set_value(steered.alpha()); });
    return p.get_future().get();
  };
  ASSERT_TRUE(workload::wait_for(
      scenario.net(),
      [&] { return std::abs(read_alpha() - 0.21) < 1e-12; },
      util::seconds(30)));

  // History reads reach the owner core's archive.
  auto hist = workload::sync_history(scenario.net(), alice,
                                     steered.app_id(), 0, 0);
  ASSERT_TRUE(hist.ok());
  EXPECT_TRUE(hist.value().ok) << hist.value().message;

  // Updates flow into the client-core FIFOs via the cross-shard fan-out.
  ASSERT_TRUE(workload::wait_for(
      scenario.net(),
      [&] {
        (void)workload::sync_poll(scenario.net(), alice, steered.app_id(),
                                  util::seconds(5));
        return alice.events_of_kind(proto::EventKind::update) > 0;
      },
      util::seconds(30)));

  // A view-only user authenticates through the gather and keeps view-level
  // access on whichever core owns the app.
  auto carol_login = workload::sync_login(scenario.net(), carol);
  ASSERT_TRUE(carol_login.ok());
  ASSERT_TRUE(carol_login.value().ok);
  auto carol_sel =
      workload::sync_select(scenario.net(), carol, steered.app_id());
  ASSERT_TRUE(carol_sel.ok());
  ASSERT_TRUE(carol_sel.value().ok);
  EXPECT_EQ(carol_sel.value().privilege, Privilege::read_only);

  // Merged /metrics scrape: per-core registries summed into one exposition.
  http::HttpRequest scrape;
  scrape.method = http::Method::get;
  scrape.path = core::kPathMetrics;
  scenario.net().send(metrics_node, server.node(), net::Channel::http,
                      http::serialize(scrape));
  ASSERT_TRUE(workload::wait_for(
      scenario.net(), [&] { return metrics_raw.last_status.load() != 0; },
      util::seconds(10)));
  EXPECT_EQ(metrics_raw.last_status.load(), 200);
  // Three logins so far: alice's explicit one, the one inside
  // sync_onboard_steerer, and carol's.
  EXPECT_NE(metrics_raw.body.find("# TYPE logins_ok counter\nlogins_ok 3\n"),
            std::string::npos)
      << metrics_raw.body;
  EXPECT_NE(metrics_raw.body.find("# TYPE apps gauge\napps 6\n"),
            std::string::npos);
  // The dispatcher's routed counter lives in core 0's registry.
  EXPECT_NE(metrics_raw.body.find("shard_routed_total"), std::string::npos);

  // Concatenated /trace scrape across the per-core span rings.
  http::HttpRequest tscrape;
  tscrape.method = http::Method::get;
  tscrape.path = core::kPathTrace;
  scenario.net().send(trace_node, server.node(), net::Channel::http,
                      http::serialize(tscrape));
  ASSERT_TRUE(workload::wait_for(
      scenario.net(), [&] { return trace_raw.last_status.load() != 0; },
      util::seconds(10)));
  EXPECT_EQ(trace_raw.last_status.load(), 200);

  scenario.stop();

  // After the drain, per-core stats are join-ordered and must add up.
  const core::ServerStats sum = server.stats_sum();
  EXPECT_EQ(sum.apps_registered, static_cast<std::uint64_t>(kApps));
  EXPECT_EQ(sum.logins_ok, 3u);  // alice, alice-via-onboard, carol
  EXPECT_EQ(sum.selects_ok, static_cast<std::uint64_t>(kApps) + 2);
  EXPECT_EQ(sum.collab_posts, static_cast<std::uint64_t>(kApps));
  EXPECT_GE(sum.commands_accepted, 2u);  // acquire_lock + set_param
  EXPECT_GT(sum.updates_processed, 0u);

  // Apps really live on the core their node hashes to.
  std::map<std::uint32_t, std::uint64_t> expected;
  for (const auto* a : apps) {
    ++expected[DiscoverServer::shard_of_node(a->node().value(), kShards)];
  }
  for (std::uint32_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(server.shard_core(i).stats().apps_registered, expected[i])
        << "core " << i;
  }
}

TEST(ShardedThreadServer, ShardCountOneIsTheLegacyPath) {
  core::ServerConfig tmpl;
  tmpl.shard_count = 1;
  workload::ThreadScenario scenario(tmpl);
  auto& server = scenario.add_server("plain");
  scenario.start();
  EXPECT_FALSE(server.sharded());
  EXPECT_EQ(server.shard_count(), 1u);
  scenario.stop();
}

}  // namespace
}  // namespace discover
