// Robustness/housekeeping behaviour: application liveness, lock leases,
// request redirection, session expiry, token expiry, peer rate limiting,
// and the server-push extension.
#include <gtest/gtest.h>

#include "app/synthetic.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;
using workload::make_acl;

app::AppConfig basic_app(const std::string& name) {
  app::AppConfig cfg;
  cfg.name = name;
  cfg.acl = make_acl({{"alice", Privilege::steer},
                      {"bob", Privilege::read_only}});
  cfg.step_time = util::milliseconds(1);
  cfg.update_every = 5;
  cfg.interact_every = 10;
  cfg.interaction_window = util::milliseconds(1);
  return cfg;
}

using MutingApp = app::SyntheticApp;  // "hang" comes from the config below

TEST(LivenessTest, SilentApplicationIsDeregistered) {
  workload::ScenarioConfig cfg;
  cfg.server_template.app_liveness_factor = 5;
  cfg.server_template.app_liveness_sweep = util::milliseconds(20);
  workload::Scenario scenario(cfg);
  auto& server = scenario.add_server("s", 1);

  // The app advertises a 5 ms update period, then we sever its node by
  // "crashing" it: stop its timer loop by pausing the app WITHOUT the
  // keep-alive (simulate by simply dropping it from the network: we abuse
  // max_steps so it stops computing but never deregisters gracefully...
  // SteerableApp always deregisters on max_steps, so instead mute by
  // detaching: easiest honest crash = set an enormous step_time after
  // registration is impossible from outside; use a custom app that stops).
  //
  // Simplest faithful crash: register a synthetic app, then remove its
  // handler by never running it again — in SimNetwork we can emulate a
  // hang by pausing via lock-free direct state: the server only sees
  // silence either way.  We use a second scenario-level trick: an app
  // with update_every=1 whose node we silence by stopping the whole app
  // through a steering `stop` would deregister cleanly.  So: kill by
  // firewall — drop is not supported; instead exploit that SteerableApp
  // stops ticking when `paused_` is set but keep-alive only starts when
  // pause arrives via command.  A "hung" app = one whose compute_step
  // never returns; not representable in a cooperative sim.  We therefore
  // test liveness directly: register, then advance virtual time far
  // beyond the budget without letting the app run by using max_steps to
  // halt stepping (it finishes AND deregisters) — not silent.
  //
  // => The honest silent-app is one with update_every = 0 after a burst:
  // the SyntheticApp can't do that, so we craft it with config: period
  // advertised from update_period = step*update_every, but interact_every
  // = 1 and interaction_window huge: the app parks in interaction phase
  // forever WITHOUT pause (no keep-alive), going silent.
  app::AppConfig acfg = basic_app("hang");
  acfg.update_every = 1;                              // advertises 1 ms
  acfg.interact_every = 3;                            // quickly interact
  acfg.interaction_window = util::seconds(3600);      // ...and hang there
  auto& hung = scenario.add_app<MutingApp>(server, acfg,
                                           app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return hung.registered(); }));
  EXPECT_EQ(server.local_app_count(), 1u);

  // After the hang, no traffic flows; the sweep must reap it (budget =
  // 5 x 1 ms, sweep every 20 ms).
  scenario.run_for(util::milliseconds(200));
  EXPECT_EQ(server.local_app_count(), 0u);
  EXPECT_EQ(server.stats().apps_departed, 1u);
}

TEST(LivenessTest, PausedApplicationSurvivesViaKeepalive) {
  workload::ScenarioConfig cfg;
  cfg.server_template.app_liveness_factor = 5;
  cfg.server_template.app_liveness_sweep = util::milliseconds(20);
  workload::Scenario scenario(cfg);
  auto& server = scenario.add_server("s", 1);
  auto& app = scenario.add_app<app::SyntheticApp>(server, basic_app("p"),
                                                  app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return app.registered(); }));
  auto& alice = scenario.add_client("alice", server);
  ASSERT_TRUE(
      workload::sync_onboard_steerer(scenario.net(), alice, app.app_id()));
  ASSERT_TRUE(workload::sync_command(scenario.net(), alice, app.app_id(),
                                     proto::CommandKind::pause_app)
                  .value().accepted);
  ASSERT_TRUE(scenario.run_until([&] { return app.paused(); }));
  // Paused for a long time: keep-alives must keep it registered.
  scenario.run_for(util::seconds(2));
  EXPECT_EQ(server.local_app_count(), 1u);
  // And resume still works afterwards.
  ASSERT_TRUE(workload::sync_command(scenario.net(), alice, app.app_id(),
                                     proto::CommandKind::resume_app)
                  .value().accepted);
  ASSERT_TRUE(scenario.run_until([&] { return !app.paused(); }));
}

TEST(LockLeaseTest, ExpiredLeaseReleasesAndPromotesWaiter) {
  workload::ScenarioConfig cfg;
  cfg.server_template.lock_lease = util::milliseconds(150);
  workload::Scenario scenario(cfg);
  auto& server = scenario.add_server("s", 1);
  app::AppConfig acfg = basic_app("leased");
  acfg.acl = make_acl({{"alice", Privilege::steer},
                       {"carol", Privilege::steer}});
  auto& app = scenario.add_app<app::SyntheticApp>(server, acfg,
                                                  app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return app.registered(); }));
  const proto::AppId id = app.app_id();

  auto& alice = scenario.add_client("alice", server);
  auto& carol = scenario.add_client("carol", server);
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario.net(), alice, id));
  ASSERT_TRUE(workload::sync_login(scenario.net(), carol).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario.net(), carol, id).value().ok);
  ASSERT_TRUE(workload::sync_command(scenario.net(), carol, id,
                                     proto::CommandKind::acquire_lock)
                  .value().accepted);
  EXPECT_EQ(server.lock_holder(id)->user, "alice");

  // Alice walks away; the lease reaps her and carol is promoted.
  ASSERT_TRUE(scenario.run_until([&] {
    const auto h = server.lock_holder(id);
    return h.has_value() && h->user == "carol";
  }));
  // The group saw the lease-expired notice.
  scenario.run_for(util::milliseconds(20));
  (void)workload::sync_poll(scenario.net(), carol, id);
  bool saw_expiry = false;
  for (const auto& ev : carol.received_events()) {
    if (ev.kind == proto::EventKind::lock_notice &&
        ev.text == "lease expired") {
      saw_expiry = true;
    }
  }
  EXPECT_TRUE(saw_expiry);
}

TEST(LockLeaseTest, ReleaseBeforeExpiryIsNotDoubleReleased) {
  workload::ScenarioConfig cfg;
  cfg.server_template.lock_lease = util::milliseconds(100);
  workload::Scenario scenario(cfg);
  auto& server = scenario.add_server("s", 1);
  auto& app = scenario.add_app<app::SyntheticApp>(server, basic_app("x"),
                                                  app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return app.registered(); }));
  const proto::AppId id = app.app_id();
  auto& alice = scenario.add_client("alice", server);
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario.net(), alice, id));
  ASSERT_TRUE(workload::sync_command(scenario.net(), alice, id,
                                     proto::CommandKind::release_lock)
                  .value().accepted);
  // Reacquire: lease timer from grant #1 must not kill grant #2.
  ASSERT_TRUE(workload::sync_command(scenario.net(), alice, id,
                                     proto::CommandKind::acquire_lock)
                  .value().accepted);
  scenario.run_for(util::milliseconds(80));  // grant-1 lease would fire now
  const auto holder = server.lock_holder(id);
  ASSERT_TRUE(holder.has_value());
  EXPECT_EQ(holder->user, "alice");
}

TEST(RedirectTest, ClientLearnsHostAndMigrates) {
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  workload::Scenario scenario(cfg);
  auto& near = scenario.add_server("near", 1);
  auto& host = scenario.add_server("host", 2);
  app::AppConfig acfg = basic_app("far-app");
  auto& app = scenario.add_app<app::SyntheticApp>(host, acfg,
                                                  app::SyntheticSpec{});
  // alice has an identity at `near` too.
  app::AppConfig id_cfg = basic_app("near-app");
  scenario.add_app<app::SyntheticApp>(near, id_cfg, app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] {
    return app.registered() && near.peer_count() == 1;
  }));

  auto& alice = scenario.add_client("alice", near);
  ASSERT_TRUE(workload::sync_login(scenario.net(), alice).value().ok);

  net::NodeId home{0};
  bool done = false;
  scenario.net().post(alice.node(), [&] {
    alice.resolve_home(app.app_id(), [&](util::Result<net::NodeId> r) {
      if (r.ok()) home = r.value();
      done = true;
    });
  });
  ASSERT_TRUE(workload::wait_for(scenario.net(), [&] { return done; }));
  EXPECT_EQ(home, host.node());

  // The portal migrates: point at the host and log in there directly.
  scenario.net().post(alice.node(), [&] { alice.set_server(home); });
  auto login2 = workload::sync_login(scenario.net(), alice);
  ASSERT_TRUE(login2.ok());
  ASSERT_TRUE(login2.value().ok);
  auto sel = workload::sync_select(scenario.net(), alice, app.app_id());
  ASSERT_TRUE(sel.value().ok);
}

TEST(SessionExpiryTest, IdleSessionDropReleasesLock) {
  workload::ScenarioConfig cfg;
  cfg.server_template.session_max_idle = util::milliseconds(300);
  workload::Scenario scenario(cfg);
  auto& server = scenario.add_server("s", 1);
  auto& app = scenario.add_app<app::SyntheticApp>(server, basic_app("y"),
                                                  app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return app.registered(); }));
  const proto::AppId id = app.app_id();
  auto& alice = scenario.add_client("alice", server);
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario.net(), alice, id));
  EXPECT_EQ(server.session_count(), 1u);
  // Alice goes silent; the idle sweep drops her session and her lock.
  ASSERT_TRUE(scenario.run_until(
      [&] { return server.session_count() == 0; }, util::seconds(10)));
  ASSERT_TRUE(scenario.run_until(
      [&] { return !server.lock_holder(id).has_value(); },
      util::seconds(5)));
}

TEST(TokenExpiryTest, ExpiredTokenIsRejected) {
  workload::ScenarioConfig cfg;
  cfg.server_template.token_ttl = util::milliseconds(200);
  cfg.server_template.session_max_idle = 0;  // keep the session itself
  workload::Scenario scenario(cfg);
  auto& server = scenario.add_server("s", 1);
  auto& app = scenario.add_app<app::SyntheticApp>(server, basic_app("z"),
                                                  app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return app.registered(); }));
  auto& alice = scenario.add_client("alice", server);
  ASSERT_TRUE(workload::sync_login(scenario.net(), alice).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario.net(), alice, app.app_id())
                  .value().ok);
  scenario.run_for(util::milliseconds(400));  // token expires
  auto poll = workload::sync_poll(scenario.net(), alice, app.app_id());
  ASSERT_TRUE(poll.ok());
  EXPECT_FALSE(poll.value().ok);
  // Re-login refreshes the token and service resumes.
  ASSERT_TRUE(workload::sync_login(scenario.net(), alice).value().ok);
  auto poll2 = workload::sync_poll(scenario.net(), alice, app.app_id());
  EXPECT_TRUE(poll2.value().ok);
}

TEST(PeerRateLimitTest, AbusivePeerIsThrottled) {
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  cfg.server_template.peer_policy.max_requests_per_sec = 10;
  workload::Scenario scenario(cfg);
  auto& host = scenario.add_server("host", 1);
  auto& peer = scenario.add_server("peer", 2);
  auto& app = scenario.add_app<app::SyntheticApp>(host, basic_app("t"),
                                                  app::SyntheticSpec{});
  app::AppConfig id_cfg = basic_app("id");
  scenario.add_app<app::SyntheticApp>(peer, id_cfg, app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] {
    return app.registered() && peer.peer_count() == 1 &&
           host.peer_count() == 1;
  }));
  auto& alice = scenario.add_client("alice", peer);
  ASSERT_TRUE(workload::sync_login(scenario.net(), alice).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario.net(), alice, app.app_id())
                  .value().ok);
  // Hammer the remote app with commands; beyond the 10/s budget the host
  // rejects the relays.
  int rejected = 0;
  for (int i = 0; i < 40; ++i) {
    auto ack = workload::sync_command(scenario.net(), alice, app.app_id(),
                                      proto::CommandKind::get_param,
                                      "param_0");
    if (!ack.ok() || !ack.value().accepted) ++rejected;
  }
  EXPECT_GT(rejected, 0);
  EXPECT_GT(host.stats().peer_rate_limited, 0u);
}

TEST(PushExtensionTest, PushedEventsArriveWithoutPolling) {
  workload::Scenario scenario;
  auto& server = scenario.add_server("s", 1);
  auto& app = scenario.add_app<app::SyntheticApp>(server, basic_app("push"),
                                                  app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return app.registered(); }));
  const proto::AppId id = app.app_id();
  auto& bob = scenario.add_client("bob", server);
  ASSERT_TRUE(workload::sync_login(scenario.net(), bob).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario.net(), bob, id).value().ok);
  ASSERT_TRUE(workload::sync_group_op(scenario.net(), bob, id,
                                      proto::GroupOp::enable_push, "")
                  .value().ok);
  scenario.run_for(util::milliseconds(100));
  // No poll was ever issued, yet updates arrived.
  EXPECT_GT(bob.pushed_events(), 0u);
  EXPECT_GT(bob.events_of_kind(proto::EventKind::update), 0u);
  EXPECT_EQ(server.total_fifo_backlog(), 0u);

  // Disabling push reverts to FIFO queueing.
  ASSERT_TRUE(workload::sync_group_op(scenario.net(), bob, id,
                                      proto::GroupOp::disable_push, "")
                  .value().ok);
  const std::uint64_t pushed_before = bob.pushed_events();
  scenario.run_for(util::milliseconds(100));
  EXPECT_EQ(bob.pushed_events(), pushed_before);
  EXPECT_GT(server.total_fifo_backlog(), 0u);
}

TEST(LockLeaseTest, CrashedHolderMidPartitionLeaseExpiresAndPeerAcquires) {
  // A remote steerer holds the lock when her site partitions away AND her
  // portal node crashes outright.  She can never release; the lease must
  // reap the lock so a surviving collaborator can steer.
  workload::ScenarioConfig cfg;
  cfg.server_template.lock_lease = util::milliseconds(200);
  workload::Scenario scenario(cfg);
  auto& server = scenario.add_server("s", 1);
  app::AppConfig acfg = basic_app("contested");
  acfg.acl = make_acl({{"alice", Privilege::steer},
                       {"carol", Privilege::steer}});
  auto& app = scenario.add_app<app::SyntheticApp>(server, acfg,
                                                  app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return app.registered(); }));
  const proto::AppId id = app.app_id();

  // Alice drives from a remote site (domain 2) across the WAN.
  auto& alice = scenario.add_client_in_domain("alice", server, 2);
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario.net(), alice, id));
  ASSERT_EQ(server.lock_holder(id)->user, "alice");

  // Her site partitions and her node crashes mid-session.
  scenario.net().partition_domains(net::DomainId{1}, net::DomainId{2});
  scenario.net().crash_node(alice.node());

  // The lease fires at the host and frees the lock despite the dead holder.
  ASSERT_TRUE(scenario.run_until([&] {
    const auto h = server.lock_holder(id);
    return !h.has_value() || h->user != "alice";
  }, util::seconds(10)));

  // A surviving local collaborator takes over steering.
  auto& carol = scenario.add_client("carol", server);
  ASSERT_TRUE(workload::sync_login(scenario.net(), carol).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario.net(), carol, id).value().ok);
  ASSERT_TRUE(workload::sync_command(scenario.net(), carol, id,
                                     proto::CommandKind::acquire_lock)
                  .value().accepted);
  ASSERT_TRUE(scenario.run_until([&] {
    const auto h = server.lock_holder(id);
    return h.has_value() && h->user == "carol";
  }, util::seconds(10)));
}

}  // namespace
}  // namespace discover
