// The "pool of services" model (paper §3): generic services published in
// the trader under their own service type, discovered at runtime, accessed
// through level-2 interfaces only — and allowed to disappear.
#include <gtest/gtest.h>

#include "app/synthetic.h"
#include "core/service_host.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;
using workload::make_acl;

class ServicePoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::ScenarioConfig cfg;
    cfg.server_template.report_to_monitoring = true;
    cfg.server_template.monitoring_period = util::milliseconds(50);
    cfg.server_template.peer_refresh_period = util::milliseconds(100);
    scenario_ = std::make_unique<workload::Scenario>(cfg);

    host_ = std::make_unique<core::ServiceHost>(scenario_->net());
    const net::NodeId node =
        scenario_->net().add_node("monitoring", host_.get(),
                                  net::DomainId{0});
    host_->attach(node);
    host_->set_registry(scenario_->registry().trader_ref());
    monitoring_ = std::make_shared<core::MonitoringService>(
        scenario_->net().clock());
    monitoring_ref_ = host_->publish(core::kMonitoringServiceType,
                                     monitoring_, {{"name", "monitor-1"}});
  }

  std::unique_ptr<workload::Scenario> scenario_;
  std::unique_ptr<core::ServiceHost> host_;
  std::shared_ptr<core::MonitoringService> monitoring_;
  orb::ObjectRef monitoring_ref_;
};

TEST_F(ServicePoolTest, ServersDiscoverAndReportAtRuntime) {
  auto& s1 = scenario_->add_server("alpha", 1);
  auto& s2 = scenario_->add_server("beta", 2);
  app::AppConfig cfg;
  cfg.name = "sim";
  cfg.acl = make_acl({{"alice", Privilege::steer}});
  cfg.step_time = util::milliseconds(1);
  cfg.update_every = 5;
  cfg.interact_every = 0;
  scenario_->add_app<app::SyntheticApp>(s1, cfg, app::SyntheticSpec{});
  (void)s2;

  ASSERT_TRUE(scenario_->run_until(
      [&] { return monitoring_->reporter_count() == 2; },
      util::seconds(10)));
  EXPECT_GT(monitoring_->reports_received(), 0u);
}

TEST_F(ServicePoolTest, SnapshotAggregatesReports) {
  auto& s1 = scenario_->add_server("alpha", 1);
  app::AppConfig cfg;
  cfg.name = "sim";
  cfg.acl = make_acl({{"alice", Privilege::steer}});
  cfg.step_time = util::milliseconds(1);
  cfg.update_every = 5;
  cfg.interact_every = 0;
  auto& app = scenario_->add_app<app::SyntheticApp>(s1, cfg,
                                                    app::SyntheticSpec{});
  ASSERT_TRUE(scenario_->run_until([&] { return app.registered(); }));
  ASSERT_TRUE(scenario_->run_until(
      [&] { return monitoring_->reports_received() >= 3; },
      util::seconds(10)));

  // Read the snapshot through the ORB like any other pool consumer.
  bool checked = false;
  host_->orb().invoke(monitoring_ref_, "snapshot", wire::Encoder{},
                      [&](util::Result<util::Bytes> r) {
                        ASSERT_TRUE(r.ok());
                        wire::Decoder d(r.value());
                        const std::uint32_t n = d.u32();
                        ASSERT_EQ(n, 1u);
                        EXPECT_EQ(d.str(), "alpha");
                        const auto metrics =
                            d.map<std::string, std::int64_t>(
                                [](wire::Decoder& dd) { return dd.str(); },
                                [](wire::Decoder& dd) { return dd.i64(); });
                        EXPECT_EQ(metrics.at("apps"), 1);
                        EXPECT_GT(metrics.at("updates"), 0);
                        checked = true;
                      });
  ASSERT_TRUE(scenario_->run_until([&] { return checked; }));
}

TEST_F(ServicePoolTest, ServersSurviveServiceWithdrawal) {
  auto& s1 = scenario_->add_server("alpha", 1);
  app::AppConfig cfg;
  cfg.name = "sim";
  cfg.acl = make_acl({{"alice", Privilege::steer}});
  cfg.step_time = util::milliseconds(1);
  cfg.update_every = 5;
  cfg.interact_every = 0;
  auto& app = scenario_->add_app<app::SyntheticApp>(s1, cfg,
                                                    app::SyntheticSpec{});
  ASSERT_TRUE(scenario_->run_until(
      [&] { return monitoring_->reports_received() >= 1; },
      util::seconds(10)));

  // The service disappears from the pool; the middleware must keep
  // functioning (§3: availability is a runtime property).
  host_->withdraw_all();
  scenario_->run_for(util::milliseconds(500));

  auto& alice = scenario_->add_client("alice", s1);
  ASSERT_TRUE(
      workload::sync_onboard_steerer(scenario_->net(), alice, app.app_id()));
  auto ack = workload::sync_command(scenario_->net(), alice, app.app_id(),
                                    proto::CommandKind::set_param, "param_0",
                                    proto::ParamValue{2.0});
  EXPECT_TRUE(ack.value().accepted);
}

}  // namespace
}  // namespace discover
