// The OS-socket transport suite (`ctest -L osnet`): real TCP over loopback.
//
// Four properties are pinned here because in-process backends can never
// exercise them:
//   * arbitrary stream segmentation — every incremental decoder (frame,
//     HTTP, GIOP header peek) must survive 1..N-byte delivery fragments;
//   * short / interrupted writes — a tiny SO_SNDBUF forces EAGAIN and
//     partial writev, and the delivered byte sequence must still be
//     identical to a ThreadNetwork run of the same workload;
//   * process lifecycle — reconnect after a peer restart, and a typed
//     (not fatal) startup error when the listen port is taken;
//   * timer-table hygiene — cancelled-timer bookkeeping stays bounded on
//     both real-time backends (the leak regression test).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "app/heat2d.h"
#include "core/client.h"
#include "core/server.h"
#include "http/http_message.h"
#include "net/frame_codec.h"
#include "net/os_network.h"
#include "net/thread_network.h"
#include "orb/orb.h"
#include "util/rng.h"
#include "workload/scenario.h"  // RegistryNode
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;
using workload::make_acl;

util::Bytes bytes_of(const std::string& s) {
  return util::Bytes(s.begin(), s.end());
}

// -- fragment fuzz: frame codec ----------------------------------------------

std::vector<net::Frame> make_sample_frames() {
  std::vector<net::Frame> frames;
  util::Rng rng(0xF00DULL);
  const std::size_t sizes[] = {0, 1, 3, 17, 255, 1024, 70000};
  std::uint32_t n = 0;
  for (const std::size_t size : sizes) {
    net::Frame f;
    f.src = net::NodeId{n % 5};
    f.dst = net::NodeId{(n + 1) % 5};
    f.channel_raw = n % 6;
    f.payload.resize(size);
    for (auto& b : f.payload) {
      b = static_cast<std::uint8_t>(rng.next() & 0xFF);
    }
    frames.push_back(std::move(f));
    ++n;
  }
  return frames;
}

util::Bytes concat_wire(const std::vector<net::Frame>& frames) {
  util::Bytes wire;
  for (const auto& f : frames) {
    const util::Bytes one =
        net::encode_frame(f.src, f.dst, f.channel_raw, f.payload);
    wire.insert(wire.end(), one.begin(), one.end());
  }
  return wire;
}

TEST(FrameCodecTest, SurvivesArbitrarySegmentation) {
  const std::vector<net::Frame> expect = make_sample_frames();
  const util::Bytes wire = concat_wire(expect);

  // 64 seeded runs, each delivering the stream in random 1..N-byte pieces,
  // plus the worst case: one byte at a time.
  for (std::uint64_t seed = 0; seed < 65; ++seed) {
    util::Rng rng(seed * 7919 + 1);
    net::FrameDecoder decoder;
    std::vector<net::Frame> got;
    std::size_t pos = 0;
    while (pos < wire.size()) {
      std::size_t take =
          seed == 64 ? 1 : 1 + rng.next() % 4096;
      take = std::min(take, wire.size() - pos);
      ASSERT_TRUE(decoder.feed(wire.data() + pos, take, got).ok());
      pos += take;
    }
    ASSERT_EQ(got.size(), expect.size()) << "seed " << seed;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].src.value(), expect[i].src.value());
      EXPECT_EQ(got[i].dst.value(), expect[i].dst.value());
      EXPECT_EQ(got[i].channel_raw, expect[i].channel_raw);
      EXPECT_EQ(got[i].payload, expect[i].payload);
    }
    EXPECT_EQ(decoder.pending_bytes(), 0u);
  }
}

TEST(FrameCodecTest, RejectsOversizedLengthBeforeBuffering) {
  // A header declaring a payload over the cap must fail as soon as the
  // length field arrives — no payload byte may ever be buffered.
  net::FrameDecoder decoder(/*max_payload=*/1024);
  const auto header = net::encode_frame_header(
      net::NodeId{0}, net::NodeId{1}, 0, /*payload_size=*/4096);
  std::vector<net::Frame> out;
  const util::Status st = decoder.feed(header.data(), 8, out);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(out.empty());
}

TEST(FrameCodecTest, RejectsBadMagic) {
  net::FrameDecoder decoder;
  const util::Bytes junk = bytes_of("GET / HTTP/1.0\r\n\r\n");
  std::vector<net::Frame> out;
  EXPECT_FALSE(decoder.feed(junk.data(), junk.size(), out).ok());
}

TEST(FrameCodecTest, HelloRoundTrips) {
  net::HelloFrame hello;
  hello.local_nodes = {0, 2, 7};
  hello.listen_addr = "127.0.0.1:4242";
  const auto decoded = net::decode_hello(net::encode_hello(hello));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().version, hello.version);
  EXPECT_EQ(decoded.value().local_nodes, hello.local_nodes);
  EXPECT_EQ(decoded.value().listen_addr, hello.listen_addr);
}

// -- fragment fuzz: HTTP stream decoder --------------------------------------

TEST(HttpStreamDecoderTest, SurvivesArbitrarySegmentation) {
  std::vector<util::Bytes> expect;
  http::HttpRequest req;
  req.method = http::Method::post;
  req.path = "/portal/command?app=1";
  req.body = bytes_of(std::string(3000, 'x'));
  expect.push_back(http::serialize(req));
  http::HttpResponse resp;
  resp.status = 200;
  resp.body = bytes_of("ok");
  expect.push_back(http::serialize(resp));
  http::HttpRequest empty_body;
  empty_body.path = "/portal/poll";
  expect.push_back(http::serialize(empty_body));

  util::Bytes wire;
  for (const auto& m : expect) wire.insert(wire.end(), m.begin(), m.end());

  for (std::uint64_t seed = 0; seed < 33; ++seed) {
    util::Rng rng(seed * 31 + 5);
    http::StreamDecoder decoder;
    std::vector<util::Bytes> got;
    std::size_t pos = 0;
    while (pos < wire.size()) {
      std::size_t take = seed == 32 ? 1 : 1 + rng.next() % 512;
      take = std::min(take, wire.size() - pos);
      ASSERT_TRUE(decoder.feed(wire.data() + pos, take).ok());
      while (auto msg = decoder.next()) got.push_back(std::move(*msg));
      pos += take;
    }
    ASSERT_EQ(got.size(), expect.size()) << "seed " << seed;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expect[i]) << "seed " << seed << " msg " << i;
    }
    EXPECT_FALSE(decoder.failed());
    EXPECT_EQ(decoder.pending_bytes(), 0u);
  }
}

TEST(HttpStreamDecoderTest, RejectsOversizedBodyAtHeadCompletion) {
  // The declared Content-Length is judged the moment the head is complete:
  // no body byte is ever awaited, let alone buffered.
  http::StreamDecoder decoder(/*max_head_bytes=*/1024, /*max_body_bytes=*/64);
  const util::Bytes head =
      bytes_of("POST /portal HTTP/1.0\r\nContent-Length: 100000\r\n\r\n");
  EXPECT_FALSE(decoder.feed(head).ok());
  EXPECT_TRUE(decoder.failed());
}

TEST(HttpStreamDecoderTest, RejectsUnterminatedHeadOverCap) {
  http::StreamDecoder decoder(/*max_head_bytes=*/64, /*max_body_bytes=*/64);
  const util::Bytes junk =
      bytes_of("GET /" + std::string(200, 'a') + " HTTP/1.0\r\n");
  EXPECT_FALSE(decoder.feed(junk).ok());
  EXPECT_TRUE(decoder.failed());
}

// -- fragment fuzz: GIOP header peek -----------------------------------------

util::Bytes make_giop_prefix(bool request) {
  // Mirrors the hand-decoded CDR layout the router peeks at: u32 magic @0,
  // u8 kind @4 (pad to 8), u64 request id @8, u64 servant key @16.
  util::Bytes b(24, 0);
  const std::uint32_t magic = 0x47494F50;  // "GIOP"
  std::memcpy(b.data(), &magic, 4);
  b[4] = request ? 0 : 1;
  const std::uint64_t request_id = 0x1122334455667788ULL;
  std::memcpy(b.data() + 8, &request_id, 8);
  const std::uint64_t servant_key = 0x99AABBCCDDEEFF00ULL;
  std::memcpy(b.data() + 16, &servant_key, 8);
  return b;
}

TEST(GiopPeekTest, EveryPrefixOfARequestClassifiesCleanly) {
  const util::Bytes frame = make_giop_prefix(/*request=*/true);
  for (std::size_t len = 0; len <= frame.size(); ++len) {
    orb::GiopHeader h;
    const orb::GiopPeek verdict =
        orb::peek_giop_header(frame.data(), len, h);
    if (len < 24) {
      EXPECT_EQ(verdict, orb::GiopPeek::need_more) << "len " << len;
    } else {
      ASSERT_EQ(verdict, orb::GiopPeek::ok);
      EXPECT_TRUE(h.valid);
      EXPECT_TRUE(h.is_request);
      EXPECT_EQ(h.request_id, 0x1122334455667788ULL);
      EXPECT_EQ(h.servant_key, 0x99AABBCCDDEEFF00ULL);
    }
  }
}

TEST(GiopPeekTest, ReplyCompletesAtSixteenBytes) {
  const util::Bytes frame = make_giop_prefix(/*request=*/false);
  for (std::size_t len = 0; len <= frame.size(); ++len) {
    orb::GiopHeader h;
    const orb::GiopPeek verdict =
        orb::peek_giop_header(frame.data(), len, h);
    if (len < 16) {
      EXPECT_EQ(verdict, orb::GiopPeek::need_more) << "len " << len;
    } else {
      ASSERT_EQ(verdict, orb::GiopPeek::ok) << "len " << len;
      EXPECT_FALSE(h.is_request);
      EXPECT_EQ(h.request_id, 0x1122334455667788ULL);
    }
  }
}

TEST(GiopPeekTest, GarbageIsInvalidNotNeedMore) {
  orb::GiopHeader h;
  const util::Bytes bad_magic = bytes_of("HTTP/1.0 200 OK\r\n");
  EXPECT_EQ(orb::peek_giop_header(bad_magic.data(), bad_magic.size(), h),
            orb::GiopPeek::invalid);

  util::Bytes bad_kind = make_giop_prefix(true);
  bad_kind[4] = 9;  // not a request or reply
  EXPECT_EQ(orb::peek_giop_header(bad_kind.data(), bad_kind.size(), h),
            orb::GiopPeek::invalid);
}

// -- OS transport: capture plumbing ------------------------------------------

class CaptureHandler final : public net::MessageHandler {
 public:
  void on_message(const net::Message& msg) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    received_.emplace_back(static_cast<std::uint32_t>(msg.channel),
                           msg.payload.bytes());
    cv_.notify_all();
  }

  bool wait_count(std::size_t n, util::Duration timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, std::chrono::nanoseconds(timeout),
                        [&] { return received_.size() >= n; });
  }

  std::vector<std::pair<std::uint32_t, util::Bytes>> snapshot() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return received_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::pair<std::uint32_t, util::Bytes>> received_;
};

class NullHandler final : public net::MessageHandler {
 public:
  void on_message(const net::Message&) override {}
};

// The deterministic A/B workload: mixed sizes (several crossing the tiny
// SO_SNDBUF) on rotating channels, all from one src to one sink.
std::vector<std::pair<net::Channel, util::Bytes>> ab_workload() {
  std::vector<std::pair<net::Channel, util::Bytes>> msgs;
  util::Rng rng(0xAB0ULL);
  for (int i = 0; i < 120; ++i) {
    const std::size_t size =
        (i % 10 == 3) ? 150000 + i : 1 + (rng.next() % 2000);
    util::Bytes body(size);
    for (std::size_t j = 0; j < size; ++j) {
      body[j] = static_cast<std::uint8_t>((i * 31 + j) & 0xFF);
    }
    msgs.emplace_back(static_cast<net::Channel>(i % 6), std::move(body));
  }
  return msgs;
}

TEST(OsNetworkTest, ShortWritesDeliverByteIdenticalToThreadNetwork) {
  const auto workload = ab_workload();

  // A: the reference run on ThreadNetwork.
  std::vector<std::pair<std::uint32_t, util::Bytes>> ref;
  {
    net::ThreadNetwork tnet;
    NullHandler src_handler;
    CaptureHandler sink;
    const net::NodeId src = tnet.add_node("src", &src_handler);
    const net::NodeId dst = tnet.add_node("sink", &sink);
    tnet.start();
    for (const auto& [channel, body] : workload) {
      tnet.send(src, dst, channel, util::Bytes(body));
    }
    ASSERT_TRUE(sink.wait_count(workload.size(), util::seconds(30)));
    tnet.stop();
    ref = sink.snapshot();
  }

  // B: the same workload over real TCP with a strangled send buffer, so the
  // coalesced flush hits EAGAIN / partial writev constantly and must
  // re-queue the unsent tail.
  std::vector<std::pair<std::uint32_t, util::Bytes>> got;
  net::OsNetworkStats sender_stats;
  {
    net::OsNetworkConfig sink_cfg;
    net::OsNetwork sink_net(sink_cfg);
    NullHandler remote_src;
    CaptureHandler sink;
    sink_net.add_remote("src", "127.0.0.1", 0);
    const net::NodeId dst_b = sink_net.add_node("sink", &sink);
    ASSERT_TRUE(sink_net.start().ok());

    net::OsNetworkConfig src_cfg;
    src_cfg.listen = false;
    src_cfg.so_sndbuf = 4096;
    net::OsNetwork src_net(src_cfg);
    NullHandler src_handler;
    const net::NodeId src = src_net.add_node("src", &src_handler);
    src_net.add_remote("sink", "127.0.0.1", sink_net.listen_port());
    ASSERT_TRUE(src_net.start().ok());

    for (const auto& [channel, body] : workload) {
      src_net.send(src, dst_b, channel, util::Bytes(body));
    }
    ASSERT_TRUE(sink.wait_count(workload.size(), util::seconds(60)));
    sender_stats = src_net.os_stats();
    src_net.stop();
    sink_net.stop();
    got = sink.snapshot();
  }

  // The strangled buffer must actually have forced the re-queue path.
  EXPECT_GT(sender_stats.partial_writes + sender_stats.eagain_writes, 0u);

  // Byte-identical: same count, same order, same channels, same bytes.
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].first, ref[i].first) << "message " << i;
    ASSERT_EQ(got[i].second, ref[i].second) << "message " << i;
  }
}

// -- OS transport: end-to-end middleware flow --------------------------------

// Two OsNetwork instances stand in for two OS processes (the two-process
// demo in examples/osnet_demo.cpp runs the same topology with real fork).
// Both build the same global node-id space in the same order: ids 0-2 live
// in the "server process", id 3 in the "client process".
TEST(OsNetworkTest, LoopbackEndToEndSteeringFlow) {
  // Server process: registry, server, app — all local; the client remote.
  net::OsNetwork server_net;
  workload::RegistryNode registry(server_net);
  const net::NodeId registry_node =
      server_net.add_node("registry", &registry, net::DomainId{0});
  registry.attach(registry_node);

  core::ServerConfig scfg;
  scfg.name = "os-server";
  core::DiscoverServer server(server_net, scfg);
  const net::NodeId server_node =
      server_net.add_node("server:os-server", &server, net::DomainId{1});
  server.attach(server_node);
  server.set_registry(registry.naming_ref(), registry.trader_ref());

  app::AppConfig acfg;
  acfg.name = "os-heat";
  acfg.acl = make_acl({{"alice", Privilege::steer}});
  acfg.step_time = util::milliseconds(1);
  acfg.update_every = 5;
  acfg.interact_every = 10;
  acfg.interaction_window = util::milliseconds(1);
  app::Heat2DApp heat(server_net, acfg, 16);
  const net::NodeId app_node =
      server_net.add_node("app:os-heat", &heat, net::DomainId{1});
  heat.attach(app_node);

  // The client never listens, so its address is irrelevant: replies flow
  // back over the connection the client opens (route adoption).
  server_net.add_remote("client:alice", "127.0.0.1", 0, net::DomainId{2});

  ASSERT_TRUE(server_net.start().ok());
  ASSERT_NE(server_net.listen_port(), 0);

  // Client process: same id space, mirrored local/remote split.
  net::OsNetworkConfig ccfg_net;
  ccfg_net.listen = false;
  net::OsNetwork client_net(ccfg_net);
  const std::uint16_t port = server_net.listen_port();
  client_net.add_remote("registry", "127.0.0.1", port, net::DomainId{0});
  client_net.add_remote("server:os-server", "127.0.0.1", port,
                        net::DomainId{1});
  client_net.add_remote("app:os-heat", "127.0.0.1", port, net::DomainId{1});

  core::ClientConfig ccfg;
  ccfg.user = "alice";
  ccfg.poll_period = util::milliseconds(10);
  core::DiscoverClient alice(client_net, ccfg);
  const net::NodeId client_node =
      client_net.add_node("client:alice", &alice, net::DomainId{2});
  alice.attach(client_node);
  alice.set_server(server_node);
  ASSERT_TRUE(client_net.start().ok());

  // Server-side startup runs in each actor's own context, as everywhere.
  server_net.post(server_node, [&] { server.start(); });
  server_net.post(app_node, [&] { heat.connect(server_node); });
  ASSERT_TRUE(workload::wait_for(
      server_net, [&] { return heat.registered(); }, util::seconds(20)));

  // The portal flow, now crossing a real TCP connection.
  auto login = workload::sync_login(client_net, alice);
  ASSERT_TRUE(login.ok()) << login.error().message;
  ASSERT_TRUE(login.value().ok);
  ASSERT_EQ(login.value().applications.size(), 1u);
  const proto::AppId app_id = login.value().applications[0].id;

  auto select = workload::sync_select(client_net, alice, app_id);
  ASSERT_TRUE(select.ok()) << select.error().message;
  ASSERT_TRUE(select.value().ok);
  ASSERT_TRUE(workload::sync_onboard_steerer(client_net, alice, app_id));

  auto ack = workload::sync_command(client_net, alice, app_id,
                                    proto::CommandKind::set_param, "alpha",
                                    proto::ParamValue{0.21});
  ASSERT_TRUE(ack.ok()) << ack.error().message;
  EXPECT_TRUE(ack.value().accepted);
  // Read alpha from the app's own execution context (actor model): the
  // test thread polling the raw field would race the compute loop.
  std::atomic<double> seen_alpha{0.0};
  ASSERT_TRUE(workload::wait_for(
      server_net,
      [&] {
        server_net.post(app_node, [&] { seen_alpha.store(heat.alpha()); });
        return std::abs(seen_alpha.load() - 0.21) < 1e-12;
      },
      util::seconds(20)));

  // Updates flow back over the adopted (inbound) route.
  ASSERT_TRUE(workload::wait_for(
      client_net,
      [&] {
        (void)workload::sync_poll(client_net, alice, app_id,
                                  util::seconds(5));
        return alice.events_of_kind(proto::EventKind::update) > 0;
      },
      util::seconds(20)));

  // Real traffic crossed the wire in both directions.
  const net::OsNetworkStats sstats = server_net.os_stats();
  EXPECT_GT(sstats.frames_in, 0u);
  EXPECT_GT(sstats.frames_out, 0u);
  EXPECT_GE(sstats.accepted, 1u);

  client_net.stop();
  server_net.stop();
  server.drain_shards();
}

// -- OS transport: lifecycle -------------------------------------------------

TEST(OsNetworkTest, ReconnectsAfterPeerRestart) {
  // The sink listens; the source is a pure client (listen=false), so the
  // restarted sink can re-bind the same port without colliding with the
  // source's acceptor.
  auto make_sink = [](std::uint16_t port, CaptureHandler* sink) {
    net::OsNetworkConfig cfg;
    cfg.listen_port = port;
    auto n = std::make_unique<net::OsNetwork>(cfg);
    n->add_remote("src", "127.0.0.1", 0);
    n->add_node("sink", sink);
    return n;
  };

  CaptureHandler sink1;
  auto sink_net = make_sink(0, &sink1);
  ASSERT_TRUE(sink_net->start().ok());
  const std::uint16_t port = sink_net->listen_port();

  net::OsNetworkConfig src_cfg;
  src_cfg.listen = false;
  net::OsNetwork src_net(src_cfg);
  NullHandler src_handler;
  const net::NodeId src = src_net.add_node("src", &src_handler);
  const net::NodeId dst = src_net.add_remote("sink", "127.0.0.1", port);
  ASSERT_TRUE(src_net.start().ok());

  src_net.send(src, dst, net::Channel::main_channel, bytes_of("before"));
  ASSERT_TRUE(sink1.wait_count(1, util::seconds(10)));

  // Peer restart: the old process dies, a new one re-binds the same port.
  sink_net->stop();
  sink_net.reset();
  CaptureHandler sink2;
  sink_net = make_sink(port, &sink2);
  ASSERT_TRUE(sink_net->start().ok());

  // The source notices the dead connection on its next send and retries
  // through the reconnect schedule until the new acceptor answers.
  ASSERT_TRUE(workload::wait_for(
      src_net,
      [&] {
        src_net.send(src, dst, net::Channel::main_channel,
                     bytes_of("after"));
        return sink2.wait_count(1, util::milliseconds(200));
      },
      util::seconds(20)));

  const auto got = sink2.snapshot();
  ASSERT_GE(got.size(), 1u);
  EXPECT_EQ(got[0].second, bytes_of("after"));

  src_net.stop();
  sink_net->stop();
}

TEST(OsNetworkTest, PortInUseIsTypedUnavailable) {
  net::OsNetwork first;
  NullHandler h;
  first.add_node("a", &h);
  ASSERT_TRUE(first.start().ok());

  net::OsNetworkConfig cfg;
  cfg.listen_port = first.listen_port();
  net::OsNetwork second(cfg);
  NullHandler h2;
  second.add_node("a", &h2);
  const util::Status st = second.start();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, util::Errc::unavailable);
  first.stop();
}

TEST(OsNetworkTest, PollFallbackCarriesTraffic) {
  // Force the portable poll(2) event loop on both ends.
  net::OsNetworkConfig cfg_b;
  cfg_b.use_epoll = false;
  net::OsNetwork b(cfg_b);
  b.add_remote("src", "127.0.0.1", 0);
  CaptureHandler sink;
  const net::NodeId dst = b.add_node("sink", &sink);
  ASSERT_TRUE(b.start().ok());

  net::OsNetworkConfig cfg_a;
  cfg_a.use_epoll = false;
  cfg_a.listen = false;
  net::OsNetwork a(cfg_a);
  NullHandler src_handler;
  const net::NodeId src = a.add_node("src", &src_handler);
  a.add_remote("sink", "127.0.0.1", b.listen_port());
  ASSERT_TRUE(a.start().ok());

  for (int i = 0; i < 50; ++i) {
    a.send(src, dst, net::Channel::command,
           bytes_of("poll-fallback " + std::to_string(i)));
  }
  ASSERT_TRUE(sink.wait_count(50, util::seconds(20)));
  const auto got = sink.snapshot();
  EXPECT_EQ(got[49].second, bytes_of("poll-fallback 49"));
  a.stop();
  b.stop();
}

TEST(OsNetworkTest, RepeatedTimerChainTicks) {
  // Self-rescheduling 1ms timers are how every app drives its compute loop;
  // the chain must keep firing indefinitely.
  net::OsNetworkConfig cfg;
  cfg.listen = false;
  net::OsNetwork onet(cfg);
  NullHandler h;
  const net::NodeId node = onet.add_node("t", &h);
  ASSERT_TRUE(onet.start().ok());

  std::atomic<int> ticks{0};
  std::function<void()> tick = [&] {
    if (++ticks < 100) {
      onet.schedule(node, util::milliseconds(1), tick);
    }
  };
  onet.schedule(node, util::milliseconds(1), tick);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (ticks.load() < 100 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(ticks.load(), 100);
  onet.stop();
}

// -- timer-table hygiene (the leak regression) -------------------------------

TEST(TimerSoakTest, ThreadNetworkCancelledBacklogStaysBounded) {
  net::ThreadNetwork tnet;
  NullHandler h;
  const net::NodeId node = tnet.add_node("t", &h);
  tnet.start();

  std::atomic<int> fired{0};
  // Thousands of schedule/cancel cycles; before the fix every cancelled id
  // was remembered forever.
  for (int round = 0; round < 50; ++round) {
    std::vector<net::TimerId> ids;
    ids.reserve(100);
    for (int i = 0; i < 100; ++i) {
      ids.push_back(tnet.schedule(node, util::milliseconds(1 + i % 5),
                                  [&] { ++fired; }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) tnet.cancel(ids[i]);
    // The backlog can never exceed the timers still outstanding.
    EXPECT_LE(tnet.cancelled_timer_backlog(), tnet.pending_timer_count());
  }

  // Once everything has fired or been discarded, the bookkeeping is empty.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  while (tnet.pending_timer_count() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(tnet.pending_timer_count(), 0u);
  EXPECT_EQ(tnet.cancelled_timer_backlog(), 0u);
  EXPECT_GT(fired.load(), 0);

  // Cancelling an already-fired id must not grow the backlog either.
  const net::TimerId late = tnet.schedule(node, 0, [] {});
  const auto fire_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (tnet.pending_timer_count() > 0 &&
         std::chrono::steady_clock::now() < fire_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  tnet.cancel(late);
  EXPECT_EQ(tnet.cancelled_timer_backlog(), 0u);
  tnet.stop();
}

TEST(TimerSoakTest, OsNetworkCancelledBacklogStaysBounded) {
  net::OsNetworkConfig cfg;
  cfg.listen = false;
  net::OsNetwork onet(cfg);
  NullHandler h;
  const net::NodeId node = onet.add_node("t", &h);
  ASSERT_TRUE(onet.start().ok());

  std::atomic<int> fired{0};
  for (int round = 0; round < 50; ++round) {
    std::vector<net::TimerId> ids;
    for (int i = 0; i < 100; ++i) {
      ids.push_back(onet.schedule(node, util::milliseconds(1 + i % 5),
                                  [&] { ++fired; }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) onet.cancel(ids[i]);
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (onet.cancelled_timer_backlog() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(onet.cancelled_timer_backlog(), 0u);
  EXPECT_GT(fired.load(), 0);
  onet.stop();
}

}  // namespace
}  // namespace discover
