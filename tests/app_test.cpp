#include <gtest/gtest.h>

#include "app/control_network.h"
#include "app/heat2d.h"
#include "app/inspiral.h"
#include "app/reservoir.h"
#include "app/synthetic.h"
#include "app/wave1d.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover::app {
namespace {

using security::Privilege;
using workload::make_acl;

proto::AppCommand make_cmd(proto::CommandKind kind, const std::string& param,
                           proto::ParamValue value = {}) {
  proto::AppCommand cmd;
  cmd.kind = kind;
  cmd.param = param;
  cmd.value = std::move(value);
  cmd.request_id = 1;
  cmd.user = "tester";
  return cmd;
}

TEST(ControlNetworkTest, SensorsAndSteerables) {
  ControlNetwork cn;
  double x = 1.0;
  cn.bind_double("x", "m", 0.0, 10.0, &x);
  cn.add_sensor("twice_x", "m",
                [&x] { return proto::ParamValue{2 * x}; });

  EXPECT_TRUE(cn.has_sensor("x"));
  EXPECT_TRUE(cn.has_actuator("x"));
  EXPECT_TRUE(cn.has_sensor("twice_x"));
  EXPECT_FALSE(cn.has_actuator("twice_x"));

  const auto specs = cn.param_specs();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "x");
  EXPECT_TRUE(specs[0].steerable);
  EXPECT_FALSE(specs[1].steerable);

  const auto metrics = cn.metrics();
  EXPECT_DOUBLE_EQ(metrics.at("x"), 1.0);
  EXPECT_DOUBLE_EQ(metrics.at("twice_x"), 2.0);
}

TEST(ControlNetworkTest, GetSetAndBounds) {
  ControlNetwork cn;
  double x = 1.0;
  cn.bind_double("x", "m", 0.0, 10.0, &x);

  auto get = cn.execute(make_cmd(proto::CommandKind::get_param, "x"));
  EXPECT_TRUE(get.ok);
  EXPECT_DOUBLE_EQ(std::get<double>(get.value), 1.0);

  auto set = cn.execute(
      make_cmd(proto::CommandKind::set_param, "x", proto::ParamValue{5.0}));
  EXPECT_TRUE(set.ok);
  EXPECT_DOUBLE_EQ(x, 5.0);

  auto oob = cn.execute(
      make_cmd(proto::CommandKind::set_param, "x", proto::ParamValue{50.0}));
  EXPECT_FALSE(oob.ok);
  EXPECT_DOUBLE_EQ(x, 5.0);  // unchanged

  auto missing = cn.execute(make_cmd(proto::CommandKind::get_param, "nope"));
  EXPECT_FALSE(missing.ok);

  auto not_steerable = cn.execute(
      make_cmd(proto::CommandKind::set_param, "y", proto::ParamValue{1.0}));
  EXPECT_FALSE(not_steerable.ok);

  auto status = cn.execute(make_cmd(proto::CommandKind::query_status, ""));
  EXPECT_TRUE(status.ok);
  EXPECT_EQ(status.params.size(), 1u);

  auto wrong_type = cn.execute(make_cmd(proto::CommandKind::set_param, "x",
                                        proto::ParamValue{std::string("s")}));
  EXPECT_FALSE(wrong_type.ok);
}

// ---------------------------------------------------------------------------
// Solver numerics (sanity, not bit-exactness)
// ---------------------------------------------------------------------------

class SolverFixture : public ::testing::Test {
 protected:
  app::AppConfig base_config(const std::string& name) {
    app::AppConfig cfg;
    cfg.name = name;
    cfg.acl = make_acl({{"alice", Privilege::steer}});
    cfg.step_time = util::milliseconds(1);
    cfg.update_every = 10;
    cfg.interact_every = 0;  // never pause for interaction in these tests
    return cfg;
  }
  workload::Scenario scenario_;
};

TEST_F(SolverFixture, HeatDiffusionHeatsThePlate) {
  auto& server = scenario_.add_server("s", 1);
  auto& heat =
      scenario_.add_app<Heat2DApp>(server, base_config("heat"), 16);
  ASSERT_TRUE(scenario_.run_until([&] { return heat.steps() >= 200; }));
  EXPECT_GT(heat.avg_temperature(), 1.0);
  EXPECT_LE(heat.max_temperature(), 100.0 + 1e-9);
  EXPECT_GT(heat.residual(), 0.0);
}

TEST_F(SolverFixture, ReservoirProducesOilThenWatersOut) {
  auto& server = scenario_.add_server("s", 1);
  auto& res =
      scenario_.add_app<ReservoirApp>(server, base_config("res"), 12, 12);
  ASSERT_TRUE(scenario_.run_until([&] { return res.steps() >= 400; }));
  EXPECT_GT(res.average_pressure(), 0.0);
  EXPECT_GE(res.water_cut(), 0.0);
  EXPECT_LE(res.water_cut(), 1.0);
  // Water injection raises saturation over time at the injector corner.
  EXPECT_GT(res.oil_rate(), 0.0);
}

TEST_F(SolverFixture, WavePropagatesEnergy) {
  auto& server = scenario_.add_server("s", 1);
  auto& wave =
      scenario_.add_app<Wave1DApp>(server, base_config("wave"), 128);
  ASSERT_TRUE(scenario_.run_until([&] { return wave.steps() >= 300; }));
  EXPECT_GT(wave.energy(), 0.0);
  EXPECT_GT(wave.peak_amplitude(), 0.0);
  EXPECT_LT(wave.peak_amplitude(), 100.0);  // stable (no blow-up)
}

TEST_F(SolverFixture, InspiralDecaysMonotonically) {
  auto& server = scenario_.add_server("s", 1);
  auto& binary = scenario_.add_app<InspiralApp>(server, base_config("gw"));
  ASSERT_TRUE(scenario_.run_until([&] { return binary.steps() >= 100; }));
  EXPECT_LT(binary.separation(), 60.0);
  EXPECT_GT(binary.orbital_frequency(), 0.0);
  const double sep_at_100 = binary.separation();
  ASSERT_TRUE(scenario_.run_until([&] { return binary.steps() >= 300; }));
  EXPECT_LE(binary.separation(), sep_at_100);
}

TEST_F(SolverFixture, SyntheticAppBurnsAndUpdates) {
  auto& server = scenario_.add_server("s", 1);
  auto& syn = scenario_.add_app<SyntheticApp>(server, base_config("syn"),
                                              SyntheticSpec{2, 3, 50});
  ASSERT_TRUE(scenario_.run_until([&] { return syn.updates_sent() >= 3; }));
  EXPECT_GT(syn.accumulator(), 0.0);
  EXPECT_EQ(syn.control().param_specs().size(), 5u);  // 2 params + 3 metrics
}

// ---------------------------------------------------------------------------
// SteerableApp lifecycle against a real server
// ---------------------------------------------------------------------------

TEST_F(SolverFixture, LifecyclePauseResumeStop) {
  auto& server = scenario_.add_server("s", 1);
  app::AppConfig cfg = base_config("life");
  cfg.interact_every = 5;
  cfg.interaction_window = util::milliseconds(1);
  auto& heat = scenario_.add_app<Heat2DApp>(server, cfg, 8);
  ASSERT_TRUE(scenario_.run_until([&] { return heat.registered(); }));
  const proto::AppId id = heat.app_id();

  auto& alice = scenario_.add_client("alice", server);
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario_.net(), alice, id));

  // Pause freezes the step counter.
  ASSERT_TRUE(workload::sync_command(scenario_.net(), alice, id,
                                     proto::CommandKind::pause_app)
                  .value().accepted);
  ASSERT_TRUE(scenario_.run_until([&] { return heat.paused(); }));
  const std::uint64_t frozen = heat.steps();
  scenario_.run_for(util::milliseconds(50));
  EXPECT_EQ(heat.steps(), frozen);

  // Resume continues.
  ASSERT_TRUE(workload::sync_command(scenario_.net(), alice, id,
                                     proto::CommandKind::resume_app)
                  .value().accepted);
  ASSERT_TRUE(scenario_.run_until([&] { return heat.steps() > frozen; }));

  // Checkpoint is acknowledged.
  ASSERT_TRUE(workload::sync_command(scenario_.net(), alice, id,
                                     proto::CommandKind::checkpoint)
                  .value().accepted);
  ASSERT_TRUE(
      scenario_.run_until([&] { return heat.checkpoints_taken() == 1; }));

  // Stop deregisters the application from the server.
  ASSERT_TRUE(workload::sync_command(scenario_.net(), alice, id,
                                     proto::CommandKind::stop_app)
                  .value().accepted);
  ASSERT_TRUE(scenario_.run_until([&] { return heat.finished(); }));
  ASSERT_TRUE(
      scenario_.run_until([&] { return server.local_app_count() == 0; }));
}

TEST_F(SolverFixture, MaxStepsFinishesAndDeregisters) {
  auto& server = scenario_.add_server("s", 1);
  app::AppConfig cfg = base_config("short");
  cfg.max_steps = 25;
  auto& heat = scenario_.add_app<Heat2DApp>(server, cfg, 8);
  ASSERT_TRUE(scenario_.run_until([&] { return heat.finished(); }));
  EXPECT_EQ(heat.steps(), 25u);
  ASSERT_TRUE(
      scenario_.run_until([&] { return server.local_app_count() == 0; }));
}

TEST_F(SolverFixture, RejectedRegistrationStopsApp) {
  core::ServerConfig strict;
  strict.name = "strict";
  strict.accept_any_app = false;
  strict.accepted_app_keys = {42};
  auto& server = scenario_.add_server("strict", 1, strict);

  app::AppConfig cfg = base_config("badkey");
  cfg.auth_key = 7;  // not accepted
  auto& rejected = scenario_.add_app<SyntheticApp>(server, cfg,
                                                   SyntheticSpec{});
  ASSERT_TRUE(scenario_.run_until([&] { return rejected.finished(); }));
  EXPECT_FALSE(rejected.registered());
  EXPECT_EQ(server.local_app_count(), 0u);

  app::AppConfig good = base_config("goodkey");
  good.auth_key = 42;
  auto& accepted = scenario_.add_app<SyntheticApp>(server, good,
                                                   SyntheticSpec{});
  ASSERT_TRUE(scenario_.run_until([&] { return accepted.registered(); }));
}

}  // namespace
}  // namespace discover::app
