#include <gtest/gtest.h>

#include "util/rng.h"
#include "wire/cdr.h"

namespace discover::wire {
namespace {

TEST(CdrTest, PrimitivesRoundTrip) {
  Encoder e;
  e.u8(0xAB);
  e.u16(0xBEEF);
  e.u32(0xDEADBEEF);
  e.u64(0x0123456789ABCDEFULL);
  e.i8(-5);
  e.i16(-300);
  e.i32(-70000);
  e.i64(-5'000'000'000LL);
  e.boolean(true);
  e.f64(3.14159);

  Decoder d(e.data());
  EXPECT_EQ(d.u8(), 0xAB);
  EXPECT_EQ(d.u16(), 0xBEEF);
  EXPECT_EQ(d.u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(d.i8(), -5);
  EXPECT_EQ(d.i16(), -300);
  EXPECT_EQ(d.i32(), -70000);
  EXPECT_EQ(d.i64(), -5'000'000'000LL);
  EXPECT_TRUE(d.boolean());
  EXPECT_DOUBLE_EQ(d.f64(), 3.14159);
  d.finish();
}

TEST(CdrTest, AlignmentPadsLikeCdr) {
  Encoder e;
  e.u8(1);
  e.u32(2);  // expect 3 bytes of padding before this
  EXPECT_EQ(e.size(), 8u);
  Decoder d(e.data());
  EXPECT_EQ(d.u8(), 1);
  EXPECT_EQ(d.u32(), 2u);
}

TEST(CdrTest, StringsAndBytes) {
  Encoder e;
  e.str("hello");
  e.str("");
  e.bytes({0x01, 0x02, 0x03});
  Decoder d(e.data());
  EXPECT_EQ(d.str(), "hello");
  EXPECT_EQ(d.str(), "");
  EXPECT_EQ(d.bytes(), (util::Bytes{0x01, 0x02, 0x03}));
  d.finish();
}

TEST(CdrTest, SequencesAndMaps) {
  Encoder e;
  const std::vector<std::uint32_t> v{1, 2, 3};
  e.sequence(v, [](Encoder& enc, std::uint32_t x) { enc.u32(x); });
  const std::map<std::string, double> m{{"a", 1.5}, {"b", -2.0}};
  e.map(m, [](Encoder& enc, const std::string& k) { enc.str(k); },
        [](Encoder& enc, double x) { enc.f64(x); });

  Decoder d(e.data());
  const auto v2 =
      d.sequence<std::uint32_t>([](Decoder& dec) { return dec.u32(); });
  EXPECT_EQ(v2, v);
  const auto m2 = d.map<std::string, double>(
      [](Decoder& dec) { return dec.str(); },
      [](Decoder& dec) { return dec.f64(); });
  EXPECT_EQ(m2, m);
}

TEST(CdrTest, OptionalRoundTrip) {
  Encoder e;
  e.optional(std::optional<std::uint32_t>{7},
             [](Encoder& enc, std::uint32_t x) { enc.u32(x); });
  e.optional(std::optional<std::uint32_t>{},
             [](Encoder& enc, std::uint32_t x) { enc.u32(x); });
  Decoder d(e.data());
  EXPECT_EQ(d.optional<std::uint32_t>([](Decoder& dec) { return dec.u32(); }),
            std::optional<std::uint32_t>{7});
  EXPECT_EQ(d.optional<std::uint32_t>([](Decoder& dec) { return dec.u32(); }),
            std::nullopt);
}

TEST(CdrTest, TruncatedInputThrows) {
  Encoder e;
  e.u64(42);
  util::Bytes data = e.data();
  data.resize(4);
  Decoder d(data);
  EXPECT_THROW(d.u64(), DecodeError);
}

TEST(CdrTest, TruncatedStringThrows) {
  Encoder e;
  e.str("hello world");
  util::Bytes data = e.data();
  data.resize(7);
  Decoder d(data);
  EXPECT_THROW(d.str(), DecodeError);
}

TEST(CdrTest, HugeSequenceLengthRejectedBeforeAllocation) {
  Encoder e;
  e.u32(0xFFFFFFFF);  // claims 4 billion elements, no data follows
  Decoder d(e.data());
  EXPECT_THROW(
      d.sequence<std::uint8_t>([](Decoder& dec) { return dec.u8(); }),
      DecodeError);
}

TEST(CdrTest, TrailingGarbageDetected) {
  Encoder e;
  e.u8(1);
  e.u8(2);
  Decoder d(e.data());
  d.u8();
  EXPECT_THROW(d.finish(), DecodeError);
}

/// Property: random (value-type, value) streams round-trip exactly.
class CdrFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdrFuzzTest, RandomStreamsRoundTrip) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::vector<int> kinds;
    std::vector<std::uint64_t> ints;
    std::vector<std::string> strings;
    std::vector<double> doubles;
    Encoder e;
    const int n = static_cast<int>(rng.between(1, 40));
    for (int i = 0; i < n; ++i) {
      const int kind = static_cast<int>(rng.below(4));
      kinds.push_back(kind);
      switch (kind) {
        case 0: {
          const std::uint64_t v = rng.next();
          ints.push_back(v);
          e.u64(v);
          break;
        }
        case 1: {
          std::string s;
          const int len = static_cast<int>(rng.below(32));
          for (int c = 0; c < len; ++c) {
            s.push_back(static_cast<char>('a' + rng.below(26)));
          }
          strings.push_back(s);
          e.str(s);
          break;
        }
        case 2: {
          const double v = rng.uniform() * 1e12 - 5e11;
          doubles.push_back(v);
          e.f64(v);
          break;
        }
        case 3: {
          const std::uint64_t v = rng.below(256);
          ints.push_back(v);
          e.u8(static_cast<std::uint8_t>(v));
          break;
        }
      }
    }
    Decoder d(e.data());
    std::size_t ii = 0;
    std::size_t si = 0;
    std::size_t di = 0;
    for (const int kind : kinds) {
      switch (kind) {
        case 0: EXPECT_EQ(d.u64(), ints[ii++]); break;
        case 1: EXPECT_EQ(d.str(), strings[si++]); break;
        case 2: EXPECT_DOUBLE_EQ(d.f64(), doubles[di++]); break;
        case 3: EXPECT_EQ(d.u8(), ints[ii++]); break;
      }
    }
    d.finish();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdrFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace discover::wire
