// Sharded federation (DESIGN.md §5j): peer ORB traffic routed to owning
// cores must be invisible on the wire.
//  * A/B equivalence — the same deterministic cross-server chat workload,
//    run once at shard_count = 1 and once at shard_count = 4, yields
//    byte-identical per-app event streams at the subscribing peer (after
//    normalising the wall-clock stamps and the core-tagged id mints that
//    legitimately differ);
//  * typed startup error — the one federation combination sharding does
//    not support (emulate_legacy_peer) is rejected up front from
//    set_registry / set_identity_directory instead of misbehaving later;
//  * end-to-end — clients of a sharded server steer, post to and poll
//    apps hosted at an unsharded peer and vice versa: the cross-shard
//    select/command/collab/history hops all cross the remote relay.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "app/synthetic.h"
#include "core/server.h"
#include "net/thread_network.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"
#include "workload/thread_scenario.h"

namespace discover {
namespace {

using core::DiscoverServer;
using security::Privilege;
using workload::make_acl;

constexpr int kHostApps = 3;
constexpr int kChatsPerApp = 8;

app::AppConfig quiet_app(const std::string& name) {
  app::AppConfig cfg;
  cfg.name = name;
  cfg.acl = make_acl({{"alice", Privilege::steer},
                      {"bob", Privilege::steer}});
  cfg.step_time = util::milliseconds(5);
  cfg.update_every = 0;  // no background stream: the workload is the driver
  cfg.interact_every = 0;
  return cfg;
}

// ---------------------------------------------------------------------------
// A/B wire equivalence: shard_count must not change what a peer receives.
// ---------------------------------------------------------------------------

// One deterministic federated run: `host` owns kHostApps apps, alice
// subscribes to all of them from `near`, bob chats into each one at the
// host.  Returns alice's received stream per host app, normalised and
// re-encoded standalone so runs can be compared byte-for-byte.
std::map<std::string, util::Bytes> run_federated_chat(
    std::uint32_t shard_count) {
  core::ServerConfig tmpl;
  tmpl.shard_count = shard_count;
  tmpl.peer_refresh_period = util::milliseconds(100);
  workload::ThreadScenario scenario(tmpl);
  auto& near = scenario.add_server("near", 1);
  auto& host = scenario.add_server("host", 2);

  std::vector<app::SyntheticApp*> apps;
  for (int i = 0; i < kHostApps; ++i) {
    apps.push_back(&scenario.add_app<app::SyntheticApp>(
        host, quiet_app("far" + std::to_string(i)), app::SyntheticSpec{}));
  }
  // Anchor app at `near` so alice can authenticate there at all.
  scenario.add_app<app::SyntheticApp>(near, quiet_app("near-anchor"),
                                      app::SyntheticSpec{});
  // All nodes before start(): the ThreadNetwork roster is fixed.
  auto& alice = scenario.add_client("alice", near);
  auto& bob = scenario.add_client("bob", host);
  scenario.start();
  EXPECT_TRUE(workload::wait_for(
      scenario.net(),
      [&] {
        for (const auto* a : apps) {
          if (!a->registered()) return false;
        }
        return near.peer_count() == 1 && host.peer_count() == 1;
      },
      util::seconds(30)));
  // The remote directory converges via the versioned refresh; retry the
  // login until it actually lists every host app plus the anchor.
  util::Result<proto::LoginReply> login{proto::LoginReply{}};
  EXPECT_TRUE(workload::wait_for(
      scenario.net(),
      [&] {
        login = workload::sync_login(scenario.net(), alice);
        return login.ok() && login.value().ok &&
               login.value().applications.size() >=
                   static_cast<std::size_t>(kHostApps) + 1;
      },
      util::seconds(30)));
  EXPECT_TRUE(login.ok() && login.value().ok);

  // Deterministic op order: subscribe to each host app by NAME (ids mint
  // differently across shard counts), then push on.
  std::map<std::string, proto::AppId> by_name;
  for (const auto& info : login.value().applications) {
    by_name[info.name] = info.id;
  }
  std::vector<proto::AppId> targets;
  for (int i = 0; i < kHostApps; ++i) {
    const auto it = by_name.find("far" + std::to_string(i));
    EXPECT_NE(it, by_name.end()) << "far" << i << " not in the directory";
    if (it == by_name.end()) return {};
    targets.push_back(it->second);
  }
  for (const auto& id : targets) {
    // The remote entry appears in near's apps_ with the directory pull;
    // failed selects have no side effects, so retrying until the pull
    // lands keeps the event streams identical across runs.
    EXPECT_TRUE(workload::wait_for(
        scenario.net(),
        [&] {
          auto sel = workload::sync_select(scenario.net(), alice, id);
          return sel.ok() && sel.value().ok;
        },
        util::seconds(30)));
    EXPECT_TRUE(workload::sync_group_op(scenario.net(), alice, id,
                                        proto::GroupOp::enable_push, "")
                    .value()
                    .ok);
  }

  // bob chats into every app at the host itself, app by app, so each
  // per-app stream is a fixed sequence whatever the interleaving between
  // apps (or cores) looks like.
  EXPECT_TRUE(workload::sync_login(scenario.net(), bob).value().ok);
  for (std::size_t a = 0; a < targets.size(); ++a) {
    EXPECT_TRUE(
        workload::sync_select(scenario.net(), bob, targets[a]).value().ok);
    for (int i = 0; i < kChatsPerApp; ++i) {
      EXPECT_TRUE(workload::sync_collab_post(
                      scenario.net(), bob, targets[a], proto::EventKind::chat,
                      "a" + std::to_string(a) + "c" + std::to_string(i))
                      .value()
                      .ok);
    }
  }
  // Read alice's recording on her own worker (actor model): the vector
  // is only safe to touch from that thread while the network runs.
  const auto all_chats_arrived = [&] {
    std::promise<bool> p;
    scenario.net().post(alice.node(), [&] {
      std::map<proto::AppId, int> chats;
      for (const auto& ev : alice.received_events()) {
        if (ev.kind == proto::EventKind::chat) ++chats[ev.app];
      }
      bool ok = true;
      for (const auto& id : targets) ok = ok && chats[id] >= kChatsPerApp;
      p.set_value(ok);
    });
    return p.get_future().get();
  };
  EXPECT_TRUE(workload::wait_for(scenario.net(),
                                 [&] { return all_chats_arrived(); },
                                 util::seconds(60)));
  scenario.stop();

  // Workers joined: normalise and re-encode alice's stream per host app.
  // Zeroing `at` (wall clock) and canonicalising the app id (the mint is
  // core-tagged under sharding by design) leaves everything the paper's
  // protocol promises: kinds, host-assigned sequences, users, payloads.
  std::map<std::string, util::Bytes> streams;
  for (std::size_t a = 0; a < targets.size(); ++a) {
    wire::Encoder enc;
    for (const auto& ev : alice.received_events()) {
      if (!(ev.app == targets[a])) continue;
      proto::ClientEvent norm = ev;
      norm.at = 0;
      norm.app = proto::AppId{};
      norm.app.local = static_cast<std::uint32_t>(a);
      proto::encode(enc, norm);
    }
    streams["far" + std::to_string(a)] = std::move(enc).take();
  }
  EXPECT_EQ(streams.size(), static_cast<std::size_t>(kHostApps));
  return streams;
}

TEST(FederationWire, ShardedAndUnshardedPeersAreByteIdentical) {
  const auto unsharded = run_federated_chat(1);
  const auto sharded = run_federated_chat(4);
  ASSERT_EQ(unsharded.size(), sharded.size());
  for (const auto& [name, stream] : unsharded) {
    ASSERT_TRUE(sharded.count(name)) << name;
    EXPECT_EQ(stream, sharded.at(name))
        << "per-app stream for " << name
        << " differs between shard_count 1 and 4";
  }
}

// ---------------------------------------------------------------------------
// Typed startup error for the unsupported federation combination.
// ---------------------------------------------------------------------------

TEST(FederationConfig, ShardedLegacyPeerEmulationIsATypedStartupError) {
  net::ThreadNetwork net;
  core::ServerConfig cfg;
  cfg.name = "bad-combo";
  cfg.shard_count = 4;
  cfg.emulate_legacy_peer = true;
  core::DiscoverServer server(net, cfg);
  const net::NodeId node = net.add_node("server:bad-combo", &server);
  server.attach(node);
  ASSERT_TRUE(server.sharded());
  const orb::ObjectRef none;
  EXPECT_THROW(server.set_registry(none, none), std::invalid_argument);
  EXPECT_THROW(server.set_identity_directory(none), std::invalid_argument);
}

TEST(FederationConfig, UnshardedLegacyPeerEmulationStillFederates) {
  net::ThreadNetwork net;
  core::ServerConfig cfg;
  cfg.name = "legacy-ok";
  cfg.emulate_legacy_peer = true;
  core::DiscoverServer server(net, cfg);
  const net::NodeId node = net.add_node("server:legacy-ok", &server);
  server.attach(node);
  ASSERT_FALSE(server.sharded());
  const orb::ObjectRef none;
  EXPECT_NO_THROW(server.set_registry(none, none));
  EXPECT_NO_THROW(server.set_identity_directory(none));
}

// ---------------------------------------------------------------------------
// End-to-end: remote apps behind owning cores, in both directions.
// ---------------------------------------------------------------------------

TEST(FederationEndToEnd, ShardedServerSteersAndPollsBothWays) {
  core::ServerConfig tmpl;
  tmpl.shard_count = 4;
  tmpl.peer_refresh_period = util::milliseconds(100);
  workload::ThreadScenario scenario(tmpl);
  auto& near = scenario.add_server("near", 1);
  auto& host = scenario.add_server("host", 2);

  auto& far = scenario.add_app<app::SyntheticApp>(host, quiet_app("far"),
                                                  app::SyntheticSpec{});
  auto& local = scenario.add_app<app::SyntheticApp>(
      near, quiet_app("near-app"), app::SyntheticSpec{});
  auto& alice = scenario.add_client("alice", host);
  auto& bob = scenario.add_client("bob", near);
  scenario.start();
  ASSERT_TRUE(workload::wait_for(
      scenario.net(),
      [&] {
        return far.registered() && local.registered() &&
               near.peer_count() == 1 && host.peer_count() == 1;
      },
      util::seconds(30)));

  // alice at the sharded `host` drives the app living at unsharded `near`:
  // her select, steering commands, collab posts and history reads all
  // cross the owning core's remote relay (§5j).
  ASSERT_TRUE(workload::wait_for(
      scenario.net(),
      [&] {
        auto l = workload::sync_login(scenario.net(), alice);
        if (!l.ok() || !l.value().ok) return false;
        auto sel =
            workload::sync_select(scenario.net(), alice, local.app_id());
        return sel.ok() && sel.value().ok;
      },
      util::seconds(30)));
  ASSERT_TRUE(
      workload::sync_onboard_steerer(scenario.net(), alice, local.app_id()));
  auto ack = workload::sync_command(scenario.net(), alice, local.app_id(),
                                    proto::CommandKind::set_param, "param_0",
                                    proto::ParamValue{4.5});
  ASSERT_TRUE(ack.ok());
  EXPECT_TRUE(ack.value().accepted) << ack.value().message;
  EXPECT_TRUE(workload::sync_collab_post(scenario.net(), alice,
                                         local.app_id(),
                                         proto::EventKind::chat, "x-shard")
                  .value()
                  .ok);
  ASSERT_TRUE(workload::wait_for(
      scenario.net(),
      [&] {
        auto hist = workload::sync_history(scenario.net(), alice,
                                           local.app_id(), 0, 0);
        if (!hist.ok() || !hist.value().ok) return false;
        for (const auto& ev : hist.value().events) {
          if (ev.kind == proto::EventKind::chat && ev.text == "x-shard") {
            return true;
          }
        }
        return false;
      },
      util::seconds(30)));

  // bob at `near` drives the sharded host's app: the unsharded remote
  // path lands on whatever core owns `far` at the other end.
  ASSERT_TRUE(workload::wait_for(
      scenario.net(),
      [&] {
        auto l = workload::sync_login(scenario.net(), bob);
        if (!l.ok() || !l.value().ok) return false;
        auto sel = workload::sync_select(scenario.net(), bob, far.app_id());
        return sel.ok() && sel.value().ok;
      },
      util::seconds(30)));
  ASSERT_TRUE(
      workload::sync_onboard_steerer(scenario.net(), bob, far.app_id()));
  auto ack2 = workload::sync_command(scenario.net(), bob, far.app_id(),
                                     proto::CommandKind::set_param, "param_0",
                                     proto::ParamValue{2.25});
  ASSERT_TRUE(ack2.ok());
  EXPECT_TRUE(ack2.value().accepted) << ack2.value().message;

  scenario.stop();
  // The relays really went remote, from both sides.
  EXPECT_GT(host.stats_sum().remote_commands_out, 0u);
  EXPECT_GT(near.stats_sum().remote_commands_out, 0u);
  EXPECT_GT(host.live_peer_events_in() + near.live_peer_events_in(), 0u);
}

}  // namespace
}  // namespace discover
