// Peer-to-peer middleware flows across servers/domains: trader discovery,
// cross-server authentication, remote application access, distributed
// locking, cross-server collaboration, push vs poll update modes, and
// server-departure handling.
#include <gtest/gtest.h>

#include "app/reservoir.h"
#include "app/synthetic.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;
using workload::make_acl;

class MultiServerTest : public ::testing::TestWithParam<core::RemoteUpdateMode> {
 protected:
  void SetUp() override {
    workload::ScenarioConfig cfg;
    cfg.server_template.remote_update_mode = GetParam();
    cfg.server_template.remote_poll_period = util::milliseconds(20);
    cfg.server_template.peer_refresh_period = util::milliseconds(100);
    scenario_ = std::make_unique<workload::Scenario>(cfg);

    rutgers_ = &scenario_->add_server("rutgers", 1);
    texas_ = &scenario_->add_server("texas", 2);

    app::AppConfig app_cfg;
    app_cfg.name = "reservoir";
    app_cfg.description = "waterflood reservoir at texas";
    app_cfg.acl = make_acl({{"alice", Privilege::steer},
                            {"bob", Privilege::read_only},
                            {"carol", Privilege::steer}});
    app_cfg.step_time = util::milliseconds(1);
    app_cfg.update_every = 5;
    app_cfg.interact_every = 10;
    app_cfg.interaction_window = util::milliseconds(2);
    app_ = &scenario_->add_app<app::ReservoirApp>(*texas_, app_cfg);
    ASSERT_TRUE(scenario_->run_until([&] { return app_->registered(); }));
    app_id_ = app_->app_id();

    // Alice needs a *local* identity at rutgers for level-1 auth (§5.2.2:
    // she must be on the user list of at least one local application).
    app::AppConfig local_cfg;
    local_cfg.name = "rutgers-local";
    local_cfg.acl = make_acl({{"alice", Privilege::read_only},
                              {"bob", Privilege::read_only},
                              {"carol", Privilege::read_only}});
    local_cfg.step_time = util::milliseconds(2);
    local_cfg.update_every = 50;
    local_cfg.interact_every = 100;
    local_app_ = &scenario_->add_app<app::SyntheticApp>(*rutgers_, local_cfg,
                                                        app::SyntheticSpec{});
    ASSERT_TRUE(scenario_->run_until([&] { return local_app_->registered(); }));

    // Let the trader-based peer discovery converge both ways.
    ASSERT_TRUE(scenario_->run_until([&] {
      return rutgers_->peer_count() == 1 && texas_->peer_count() == 1;
    }));
  }

  std::unique_ptr<workload::Scenario> scenario_;
  core::DiscoverServer* rutgers_ = nullptr;
  core::DiscoverServer* texas_ = nullptr;
  app::ReservoirApp* app_ = nullptr;
  app::SyntheticApp* local_app_ = nullptr;
  proto::AppId app_id_;
};

TEST_P(MultiServerTest, PeersDiscoverEachOtherThroughTrader) {
  EXPECT_EQ(rutgers_->peer_count(), 1u);
  EXPECT_EQ(texas_->peer_count(), 1u);
}

TEST_P(MultiServerTest, LoginAggregatesApplicationsAcrossServers) {
  auto& alice = scenario_->add_client("alice", *rutgers_);
  auto reply = workload::sync_login(scenario_->net(), alice);
  ASSERT_TRUE(reply.ok()) << reply.error().message;
  ASSERT_TRUE(reply.value().ok);
  // Local synthetic app + remote reservoir.
  ASSERT_EQ(reply.value().applications.size(), 2u);
  bool saw_remote = false;
  for (const auto& info : reply.value().applications) {
    if (info.id == app_id_) {
      saw_remote = true;
      EXPECT_EQ(info.privilege, Privilege::steer);
      EXPECT_EQ(info.id.host, texas_->node().value());
    }
  }
  EXPECT_TRUE(saw_remote);
}

TEST_P(MultiServerTest, RemoteSelectResolvesThroughNamingService) {
  auto& alice = scenario_->add_client("alice", *rutgers_);
  ASSERT_TRUE(workload::sync_login(scenario_->net(), alice).value().ok);
  auto sel = workload::sync_select(scenario_->net(), alice, app_id_);
  ASSERT_TRUE(sel.ok());
  ASSERT_TRUE(sel.value().ok) << sel.value().message;
  EXPECT_EQ(sel.value().privilege, Privilege::steer);
  EXPECT_GE(sel.value().interface_spec.size(), 4u);
}

TEST_P(MultiServerTest, RemoteSteeringThroughCorbaProxy) {
  auto& alice = scenario_->add_client("alice", *rutgers_);
  ASSERT_TRUE(
      workload::sync_onboard_steerer(scenario_->net(), alice, app_id_));
  EXPECT_EQ(texas_->lock_holder(app_id_)->user, "alice");
  EXPECT_EQ(texas_->lock_holder(app_id_)->server, rutgers_->node().value());

  auto ack = workload::sync_command(
      scenario_->net(), alice, app_id_, proto::CommandKind::set_param,
      "injection_rate", proto::ParamValue{750.0});
  ASSERT_TRUE(ack.ok());
  EXPECT_TRUE(ack.value().accepted) << ack.value().message;
  ASSERT_TRUE(scenario_->run_until(
      [&] { return std::abs(app_->injection_rate() - 750.0) < 1e-9; }));
}

TEST_P(MultiServerTest, RemoteUpdatesReachClientsOnOtherServer) {
  auto& alice = scenario_->add_client("alice", *rutgers_);
  ASSERT_TRUE(workload::sync_login(scenario_->net(), alice).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario_->net(), alice, app_id_)
                  .value().ok);
  scenario_->run_for(util::milliseconds(300));
  (void)workload::sync_poll(scenario_->net(), alice, app_id_);
  scenario_->run_for(util::milliseconds(300));
  (void)workload::sync_poll(scenario_->net(), alice, app_id_);
  EXPECT_GT(alice.events_of_kind(proto::EventKind::update), 0u);
}

TEST_P(MultiServerTest, DistributedLockIsExclusiveAcrossServers) {
  auto& alice = scenario_->add_client("alice", *rutgers_);
  auto& carol = scenario_->add_client("carol", *texas_);
  ASSERT_TRUE(
      workload::sync_onboard_steerer(scenario_->net(), alice, app_id_));

  // Carol (at the host server) queues behind remote alice.
  ASSERT_TRUE(workload::sync_login(scenario_->net(), carol).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario_->net(), carol, app_id_)
                  .value().ok);
  ASSERT_TRUE(workload::sync_command(scenario_->net(), carol, app_id_,
                                     proto::CommandKind::acquire_lock)
                  .value().accepted);
  scenario_->run_for(util::milliseconds(100));
  ASSERT_TRUE(texas_->lock_holder(app_id_).has_value());
  EXPECT_EQ(texas_->lock_holder(app_id_)->user, "alice");

  // Carol cannot steer while alice holds the lock.
  auto carol_ack = workload::sync_command(
      scenario_->net(), carol, app_id_, proto::CommandKind::set_param,
      "injection_rate", proto::ParamValue{100.0});
  ASSERT_TRUE(carol_ack.ok());
  EXPECT_FALSE(carol_ack.value().accepted);

  // Release at alice promotes carol (FIFO).
  ASSERT_TRUE(workload::sync_command(scenario_->net(), alice, app_id_,
                                     proto::CommandKind::release_lock)
                  .value().accepted);
  ASSERT_TRUE(scenario_->run_until([&] {
    const auto h = texas_->lock_holder(app_id_);
    return h.has_value() && h->user == "carol";
  }));
}

TEST_P(MultiServerTest, CollaborationSpansServers) {
  auto& alice = scenario_->add_client("alice", *rutgers_);
  auto& carol = scenario_->add_client("carol", *texas_);
  for (auto* c : {&alice, &carol}) {
    ASSERT_TRUE(workload::sync_login(scenario_->net(), *c).value().ok);
    ASSERT_TRUE(workload::sync_select(scenario_->net(), *c, app_id_)
                    .value().ok);
  }
  // Chat posted at rutgers must reach carol at texas via the host.
  ASSERT_TRUE(workload::sync_collab_post(scenario_->net(), alice, app_id_,
                                         proto::EventKind::chat,
                                         "hello from rutgers")
                  .value().ok);
  scenario_->run_for(util::milliseconds(300));
  (void)workload::sync_poll(scenario_->net(), carol, app_id_);
  bool carol_saw = false;
  for (const auto& ev : carol.received_events()) {
    if (ev.kind == proto::EventKind::chat &&
        ev.text == "hello from rutgers") {
      carol_saw = true;
    }
  }
  EXPECT_TRUE(carol_saw);

  // And the echo flows back to alice as well (she is in the group too).
  scenario_->run_for(util::milliseconds(300));
  (void)workload::sync_poll(scenario_->net(), alice, app_id_);
  EXPECT_GT(alice.events_of_kind(proto::EventKind::chat), 0u);
}

TEST_P(MultiServerTest, ServerDownRemovesItsApplications) {
  auto& alice = scenario_->add_client("alice", *rutgers_);
  ASSERT_TRUE(workload::sync_login(scenario_->net(), alice).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario_->net(), alice, app_id_)
                  .value().ok);
  texas_->shutdown();
  ASSERT_TRUE(scenario_->run_until(
      [&] { return rutgers_->peer_count() == 0; },
      util::seconds(5)));
  // Alice's next login only sees the local app.
  auto reply = workload::sync_login(scenario_->net(), alice);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().applications.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    UpdateModes, MultiServerTest,
    ::testing::Values(core::RemoteUpdateMode::push,
                      core::RemoteUpdateMode::poll),
    [](const ::testing::TestParamInfo<core::RemoteUpdateMode>& info) {
      return info.param == core::RemoteUpdateMode::push ? "push" : "poll";
    });

}  // namespace
}  // namespace discover
