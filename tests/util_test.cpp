#include <gtest/gtest.h>

#include <cmath>

#include "util/bytes.h"
#include "util/clock.h"
#include "util/ids.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"

namespace discover::util {
namespace {

TEST(StrongIdTest, ComparesAndHashes) {
  struct TagA {};
  using IdA = StrongId<TagA, std::uint32_t>;
  const IdA a{1};
  const IdA b{2};
  EXPECT_TRUE(a == IdA{1});
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(a < b);
  EXPECT_EQ(std::hash<IdA>{}(a), std::hash<IdA>{}(IdA{1}));
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(0), 42);

  Result<int> bad = Error{Errc::not_found, "nope"};
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::not_found);
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(ResultTest, StatusDefaultsToOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status f{Errc::timeout, "late"};
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.error().code, Errc::timeout);
}

TEST(ResultTest, ErrcNamesAreStable) {
  EXPECT_STREQ(errc_name(Errc::permission_denied), "permission_denied");
  EXPECT_STREQ(errc_name(Errc::protocol_error), "protocol_error");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto v = rng.between(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(OnlineStatsTest, MeanMinMaxStddev) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
}

TEST(OnlineStatsTest, MergeMatchesCombinedStream) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform() * 100;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(LatencyHistogramTest, ExactForSmallValues) {
  LatencyHistogram h;
  for (int i = 1; i <= 32; ++i) h.record(i);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 32);
}

TEST(LatencyHistogramTest, PercentilesAreMonotoneAndBounded) {
  LatencyHistogram h;
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    h.record(static_cast<Duration>(rng.below(50'000'000)));
  }
  Duration prev = 0;
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    const Duration p = h.percentile(q);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_LE(h.percentile(1.0), h.max());
}

TEST(LatencyHistogramTest, RelativeErrorUnderFivePercent) {
  LatencyHistogram h;
  // All samples identical: every percentile must land within bucket width.
  for (int i = 0; i < 100; ++i) h.record(1'234'567);
  const double p50 = static_cast<double>(h.percentile(0.5));
  EXPECT_NEAR(p50, 1'234'567.0, 1'234'567.0 * 0.05);
}

TEST(LatencyHistogramTest, MergeAccumulates) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record(100);
  b.record(200);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 200);
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock c;
  EXPECT_EQ(c.now(), 0);
  c.advance_to(milliseconds(5));
  EXPECT_EQ(c.now(), 5 * kMillisecond);
}

TEST(ClockTest, SystemClockIsMonotone) {
  SystemClock c;
  const TimePoint a = c.now();
  const TimePoint b = c.now();
  EXPECT_LE(a, b);
}

TEST(FormatTest, Durations) {
  EXPECT_EQ(format_duration(500), "500ns");
  EXPECT_EQ(format_duration(2 * kMillisecond), "2000.0us");
  EXPECT_EQ(format_duration(123 * kMillisecond), "123.00ms");
  EXPECT_EQ(format_duration(15 * kSecond), "15.00s");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(format_bytes(100), "100B");
  EXPECT_EQ(format_bytes(100 * 1024), "100.0KiB");
}

TEST(BytesTest, RoundTripAndHex) {
  const Bytes b = to_bytes("abc");
  EXPECT_EQ(to_string(b), "abc");
  EXPECT_EQ(hex_dump(b), "61 62 63 ");
}

}  // namespace
}  // namespace discover::util
