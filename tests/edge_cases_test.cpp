// Cross-module edge cases: domain link overrides, ORB pipelining, malformed
// portal traffic, buffered-command ordering, whiteboard payloads, and
// identifier edge cases.
#include <gtest/gtest.h>

#include "app/synthetic.h"
#include "grid/job.h"
#include "grid/resource.h"
#include "net/sim_network.h"
#include "orb/orb.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;
using workload::make_acl;

TEST(SimTopologyTest, DomainLinkOverrideBeatsDefaultWan) {
  net::SimNetwork net;
  net.set_lan_model({util::microseconds(10), 1e12});
  net.set_wan_model({util::milliseconds(100), 1e12});
  net.set_domain_link(net::DomainId{1}, net::DomainId{2},
                      {util::milliseconds(3), 1e12});  // dedicated fiber
  class Sink : public net::MessageHandler {
    void on_message(const net::Message&) override {}
  } sink;
  const net::NodeId a = net.add_node("a", &sink, net::DomainId{1});
  const net::NodeId b = net.add_node("b", &sink, net::DomainId{2});
  const net::NodeId c = net.add_node("c", &sink, net::DomainId{3});
  net.send(a, b, net::Channel::main_channel, {});
  net.run_until_idle();
  EXPECT_EQ(net.now(), util::milliseconds(3));  // override applied
  net.send(a, c, net::Channel::main_channel, {});
  net.run_until_idle();
  EXPECT_EQ(net.now(), util::milliseconds(3) + util::milliseconds(100));
}

TEST(OrbPipeliningTest, ManyOutstandingCallsCorrelateCorrectly) {
  net::SimNetwork net;
  net.set_lan_model({util::milliseconds(2), 1e9});

  class Doubler : public orb::Servant {
   public:
    [[nodiscard]] std::string interface_name() const override {
      return "Doubler";
    }
    void dispatch(const std::string&, wire::Decoder& args, wire::Encoder& out,
                  orb::DispatchContext&) override {
      out.i64(args.i64() * 2);
    }
  };
  class Node : public net::MessageHandler {
   public:
    explicit Node(net::Network& n) : network(n) {}
    void init(net::NodeId self) {
      orb = std::make_unique<orb::Orb>(network, self);
    }
    void on_message(const net::Message& msg) override { orb->handle(msg); }
    net::Network& network;
    std::unique_ptr<orb::Orb> orb;
  };
  Node caller(net);
  Node callee(net);
  const net::NodeId nc = net.add_node("c", &caller);
  const net::NodeId ns = net.add_node("s", &callee);
  caller.init(nc);
  callee.init(ns);
  const orb::ObjectRef ref = callee.orb->activate(std::make_shared<Doubler>());

  // 64 concurrent in-flight calls; every reply must match its request.
  int correct = 0;
  for (std::int64_t i = 0; i < 64; ++i) {
    wire::Encoder args;
    args.i64(i);
    caller.orb->invoke(ref, "double", std::move(args),
                       [&correct, i](util::Result<util::Bytes> r) {
                         ASSERT_TRUE(r.ok());
                         wire::Decoder d(r.value());
                         if (d.i64() == 2 * i) ++correct;
                       });
  }
  net.run_until_idle();
  EXPECT_EQ(correct, 64);
}

class PortalEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = &scenario_.add_server("s", 1);
    app::AppConfig cfg;
    cfg.name = "edge";
    cfg.acl = make_acl({{"alice", Privilege::steer}});
    cfg.step_time = util::milliseconds(1);
    cfg.update_every = 0;
    cfg.interact_every = 2;
    cfg.interaction_window = util::milliseconds(1);
    app_ = &scenario_.add_app<app::SyntheticApp>(*server_, cfg,
                                                 app::SyntheticSpec{});
    ASSERT_TRUE(scenario_.run_until([&] { return app_->registered(); }));
  }

  workload::Scenario scenario_;
  core::DiscoverServer* server_ = nullptr;
  app::SyntheticApp* app_ = nullptr;
};

TEST_F(PortalEdgeTest, MalformedBodyGets400NotACrash) {
  // Raw garbage POSTed straight at the command servlet.
  class RawClient : public net::MessageHandler {
   public:
    void on_message(const net::Message& msg) override {
      auto parsed = http::parse_response(msg.payload);
      if (parsed.ok()) last_status = parsed.value().status;
    }
    int last_status = 0;
  } raw;
  const net::NodeId raw_node = scenario_.net().add_node("raw", &raw);
  http::HttpRequest req;
  req.method = http::Method::post;
  req.path = core::kPathCommand;
  req.body = util::to_bytes("!!! not CDR !!!");
  scenario_.net().send(raw_node, server_->node(), net::Channel::http,
                       http::serialize(req));
  // run_until (not until-idle): the app's periodic timers never quiesce.
  ASSERT_TRUE(scenario_.net().run_until([&] { return raw.last_status != 0; }));
  EXPECT_EQ(raw.last_status, 400);
  // Server keeps functioning.
  auto& alice = scenario_.add_client("alice", *server_);
  EXPECT_TRUE(workload::sync_login(scenario_.net(), alice).value().ok);
}

TEST_F(PortalEdgeTest, BufferedCommandsFlushInSubmissionOrder) {
  auto& alice = scenario_.add_client("alice", *server_);
  ASSERT_TRUE(
      workload::sync_onboard_steerer(scenario_.net(), alice, app_->app_id()));
  // Fire three sets quickly; the daemon buffers during compute phases and
  // must flush FIFO, so the final value is the LAST submitted.
  for (const double v : {1.0, 2.0, 3.0}) {
    ASSERT_TRUE(workload::sync_command(scenario_.net(), alice,
                                       app_->app_id(),
                                       proto::CommandKind::set_param,
                                       "param_0", proto::ParamValue{v})
                    .value().accepted);
  }
  ASSERT_TRUE(scenario_.run_until(
      [&] { return app_->commands_executed() >= 3; }));
  const auto resp = app_->control().execute([] {
    proto::AppCommand cmd;
    cmd.kind = proto::CommandKind::get_param;
    cmd.param = "param_0";
    return cmd;
  }());
  EXPECT_DOUBLE_EQ(std::get<double>(resp.value), 3.0);
}

TEST_F(PortalEdgeTest, WhiteboardPayloadRoundTrips) {
  auto& alice = scenario_.add_client("alice", *server_);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), alice).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario_.net(), alice, app_->app_id())
                  .value().ok);
  // Whiteboard ops carry arbitrary string payloads (stroke data).
  bool ok = false;
  scenario_.net().post(alice.node(), [&] {
    proto::CollabPost post;
    post.token = alice.token();
    post.app_id = app_->app_id();
    post.kind = proto::EventKind::whiteboard;
    post.text = "stroke";
    post.payload = proto::ParamValue{std::string("M10,20 L30,40")};
    alice.post_collab(app_->app_id(), proto::EventKind::whiteboard,
                      "M10,20 L30,40",
                      [&](util::Result<proto::CollabAck> r) {
                        ok = r.ok() && r.value().ok;
                      });
  });
  ASSERT_TRUE(workload::wait_for(scenario_.net(), [&] { return ok; }));
  scenario_.run_for(util::milliseconds(10));
  auto poll = workload::sync_poll(scenario_.net(), alice, app_->app_id());
  bool saw = false;
  for (const auto& ev : alice.received_events()) {
    if (ev.kind == proto::EventKind::whiteboard &&
        ev.text == "M10,20 L30,40") {
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

TEST_F(PortalEdgeTest, PollMaxEventsIsHonoured) {
  auto& alice = scenario_.add_client("alice", *server_);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), alice).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario_.net(), alice, app_->app_id())
                  .value().ok);
  // Generate a burst of chat events into alice's FIFO.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(workload::sync_collab_post(scenario_.net(), alice,
                                           app_->app_id(),
                                           proto::EventKind::chat,
                                           "m" + std::to_string(i))
                    .value().ok);
  }
  scenario_.run_for(util::milliseconds(10));
  bool done = false;
  std::size_t got = 0;
  std::uint32_t backlog = 0;
  scenario_.net().post(alice.node(), [&] {
    proto::PollRequest req;  // handmade to set max_events
    alice.poll(app_->app_id(), [&](util::Result<proto::PollReply> r) {
      ASSERT_TRUE(r.ok());
      got = r.value().events.size();
      backlog = r.value().backlog;
      done = true;
    });
    (void)req;
  });
  ASSERT_TRUE(workload::wait_for(scenario_.net(), [&] { return done; }));
  // Default client poll_max_events is 64 >= 10, so one poll drains all.
  EXPECT_EQ(got, 10u);
  EXPECT_EQ(backlog, 0u);
}

TEST_F(PortalEdgeTest, VisualizationServletRendersMetric) {
  auto& alice = scenario_.add_client("alice", *server_);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), alice).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario_.net(), alice, app_->app_id())
                  .value().ok);
  // Produce some update history: the synthetic app updates are disabled
  // (update_every=0 in this fixture), so publish via steering responses is
  // not enough — re-register a chatty app instead.
  app::AppConfig cfg;
  cfg.name = "chatty";
  cfg.acl = make_acl({{"alice", Privilege::steer}});
  cfg.step_time = util::milliseconds(1);
  cfg.update_every = 2;
  cfg.interact_every = 0;
  auto& chatty = scenario_.add_app<app::SyntheticApp>(*server_, cfg,
                                                      app::SyntheticSpec{});
  ASSERT_TRUE(scenario_.run_until([&] { return chatty.registered(); }));
  ASSERT_TRUE(workload::sync_select(scenario_.net(), alice,
                                    chatty.app_id())
                  .value().ok);
  scenario_.run_for(util::milliseconds(100));

  // Raw browser-style GET using alice's session cookie.
  class RawClient : public net::MessageHandler {
   public:
    void on_message(const net::Message& msg) override {
      auto parsed = http::parse_response(msg.payload);
      if (parsed.ok()) {
        status = parsed.value().status;
        body = util::to_string(parsed.value().body);
      }
    }
    int status = 0;
    std::string body;
  };
  // Reuse alice's node so the server sees her HTTP session: send the GET
  // from her node with her cookie.
  http::HttpRequest req;
  req.method = http::Method::get;
  req.path = std::string(core::kPathViz) + "?app=" +
             chatty.app_id().to_string() + "&metric=metric_0&n=40";
  req.headers.set("Cookie", alice.http().cookie_for(server_->node()));
  // Intercept the reply by parking a raw listener on alice's... instead,
  // simplest: send from a raw node but with alice's cookie; the container
  // resolves the session by cookie, not by source node.
  RawClient raw;
  const net::NodeId raw_node = scenario_.net().add_node("browser", &raw);
  scenario_.net().send(raw_node, server_->node(), net::Channel::http,
                       http::serialize(req));
  ASSERT_TRUE(scenario_.net().run_until([&] { return raw.status != 0; }));
  EXPECT_EQ(raw.status, 200);
  EXPECT_NE(raw.body.find("metric_0"), std::string::npos);
  EXPECT_NE(raw.body.find("samples="), std::string::npos);

  // Without a session: 403.
  http::HttpRequest anon;
  anon.method = http::Method::get;
  anon.path = std::string(core::kPathViz) + "?app=" +
              chatty.app_id().to_string() + "&metric=metric_0";
  raw.status = 0;
  scenario_.net().send(raw_node, server_->node(), net::Channel::http,
                       http::serialize(anon));
  ASSERT_TRUE(scenario_.net().run_until([&] { return raw.status != 0; }));
  EXPECT_EQ(raw.status, 403);

  // Missing params: 400.
  http::HttpRequest bad;
  bad.method = http::Method::get;
  bad.path = core::kPathViz;
  raw.status = 0;
  scenario_.net().send(raw_node, server_->node(), net::Channel::http,
                       http::serialize(bad));
  ASSERT_TRUE(scenario_.net().run_until([&] { return raw.status != 0; }));
  EXPECT_EQ(raw.status, 400);
}

TEST(AppIdEdgeTest, ParseHandlesJunk) {
  EXPECT_EQ(proto::AppId::parse(""), proto::AppId{});
  EXPECT_EQ(proto::AppId::parse(":"), proto::AppId{});
  EXPECT_EQ(proto::AppId::parse("5:"), (proto::AppId{5, 0}));
  EXPECT_EQ(proto::AppId::parse("abc:def"), (proto::AppId{0, 0}));
  EXPECT_FALSE(proto::AppId{}.valid());
  EXPECT_TRUE((proto::AppId{1, 0}).valid());
}

TEST(PrivilegeNameTest, AllNamesCovered) {
  EXPECT_STREQ(security::privilege_name(security::Privilege::none), "none");
  EXPECT_STREQ(security::privilege_name(security::Privilege::steer),
               "steer");
  EXPECT_STREQ(net::channel_name(net::Channel::giop), "giop");
  EXPECT_STREQ(net::channel_name(net::Channel::control), "control");
  EXPECT_STREQ(grid::job_state_name(grid::JobState::finished), "finished");
}

}  // namespace
}  // namespace discover
