// Fan-out fast path (DESIGN.md "Fan-out fast path"):
//  * property test — the per-app subscriber index always agrees with a
//    brute-force scan of the session table, across 10k randomized
//    subscribe / unsubscribe / drop / crash operations;
//  * regression — drop_session still releases remote lock interest and
//    unsubscribes remote apps once their local watcher refcount hits zero;
//  * wire compatibility — encode_poll_reply_shared is byte-identical to
//    encode_body(PollReply);
//  * equivalence — fast path and legacy scan deliver the same events.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "app/synthetic.h"
#include "util/rng.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;

bool sync_logout(net::Network& network, core::DiscoverClient& client) {
  bool done = false;
  client.logout([&done](util::Result<proto::CollabAck>) { done = true; });
  return workload::wait_for(network, [&] { return done; });
}

// ---------------------------------------------------------------------------
// Property: index == brute force, 10k randomized ops
// ---------------------------------------------------------------------------

TEST(FanoutIndexProperty, IndexMatchesBruteForceUnder10kRandomOps) {
  util::Rng rng(0xfa41d0ULL);
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  cfg.server_template.session_max_idle = util::seconds(2);
  cfg.server_template.remote_poll_period = util::milliseconds(50);
  workload::Scenario scenario(cfg);
  auto& host = scenario.add_server("host", 1);
  auto& peer = scenario.add_server("peer", 2);

  constexpr int kClients = 8;
  std::vector<security::AclEntry> acl;
  for (int i = 0; i < kClients; ++i) {
    acl.push_back({"u" + std::to_string(i), Privilege::read_write, 0});
  }
  app::AppConfig app_cfg;
  app_cfg.name = "sim";
  app_cfg.acl = acl;
  app_cfg.step_time = util::milliseconds(5);
  app_cfg.update_every = 0;  // quiet app: the test drives all traffic
  app_cfg.interact_every = 0;
  auto& app_a =
      scenario.add_app<app::SyntheticApp>(host, app_cfg, app::SyntheticSpec{});
  app::AppConfig app_cfg_b = app_cfg;
  app_cfg_b.name = "sim2";
  auto& app_b =
      scenario.add_app<app::SyntheticApp>(peer, app_cfg_b, app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] {
    return app_a.registered() && app_b.registered() &&
           host.peer_count() == 1 && peer.peer_count() == 1;
  }));
  const std::vector<proto::AppId> app_ids{app_a.app_id(), app_b.app_id()};

  struct Member {
    core::DiscoverClient* client = nullptr;
    core::DiscoverServer* server = nullptr;
    bool logged_in = false;
  };
  std::vector<Member> members;
  for (int i = 0; i < kClients; ++i) {
    Member m;
    m.server = i % 2 == 0 ? &host : &peer;
    m.client =
        &scenario.add_client("u" + std::to_string(i), *m.server);
    members.push_back(m);
  }

  auto check = [&](int iter) {
    ASSERT_TRUE(host.subscriber_index_consistent())
        << "host index diverged at iteration " << iter;
    ASSERT_TRUE(peer.subscriber_index_consistent())
        << "peer index diverged at iteration " << iter;
  };

  constexpr int kIterations = 10000;
  for (int i = 0; i < kIterations; ++i) {
    Member& m = members[rng.below(members.size())];
    if (!m.logged_in) {
      const auto r = workload::sync_login(scenario.net(), *m.client);
      m.logged_in = r.ok() && r.value().ok;
    } else {
      const double dice = rng.uniform();
      if (dice < 0.55) {
        // subscribe (idempotent on re-select)
        const proto::AppId& id = app_ids[rng.below(app_ids.size())];
        (void)workload::sync_select(scenario.net(), *m.client, id);
      } else if (dice < 0.70) {
        // group churn on an existing sub (must never disturb the index)
        const proto::AppId& id = app_ids[rng.below(app_ids.size())];
        const proto::GroupOp op = rng.chance(0.5)
                                      ? proto::GroupOp::join_subgroup
                                      : proto::GroupOp::enable_push;
        (void)workload::sync_group_op(scenario.net(), *m.client, id, op,
                                      "team");
      } else if (dice < 0.85) {
        // unsubscribe-all via logout
        (void)sync_logout(scenario.net(), *m.client);
        m.logged_in = false;
      } else if (dice < 0.93) {
        // crash: the client vanishes mid-session; the idle sweep must drop
        // the server-side session (and its index rows) without its help.
        scenario.net().crash_node(m.client->node());
        scenario.run_for(cfg.server_template.session_max_idle +
                         util::seconds(3));
        scenario.net().restart_node(m.client->node());
        m.logged_in = false;
      } else {
        scenario.run_for(util::milliseconds(rng.below(200)));
      }
    }
    check(i);
    if (HasFatalFailure()) return;
  }

  // Teardown sweep: everyone leaves; the index must end empty.
  for (Member& m : members) {
    if (m.logged_in) (void)sync_logout(scenario.net(), *m.client);
  }
  scenario.run_for(util::seconds(10));
  check(kIterations);
  EXPECT_EQ(host.subscriber_count(app_ids[0]), 0u);
  EXPECT_EQ(peer.subscriber_count(app_ids[1]), 0u);
}

// ---------------------------------------------------------------------------
// Regression: drop_session releases remote locks + refcounted unsubscribe
// ---------------------------------------------------------------------------

TEST(FanoutDropSession, ReleasesRemoteLocksAndUnsubscribesAtZeroWatchers) {
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  workload::Scenario scenario(cfg);
  auto& host = scenario.add_server("host", 1);
  auto& peer = scenario.add_server("peer", 2);

  app::AppConfig app_cfg;
  app_cfg.name = "sim";
  app_cfg.acl = workload::make_acl({{"alice", Privilege::steer},
                                    {"bob", Privilege::read_write}});
  app_cfg.step_time = util::milliseconds(5);
  app_cfg.update_every = 0;
  app_cfg.interact_every = 0;
  auto& app =
      scenario.add_app<app::SyntheticApp>(host, app_cfg, app::SyntheticSpec{});
  // Level-1 auth is per-server (ACLs belong to local apps): the watchers
  // log in at the peer, so it needs an identity app knowing them.
  app::AppConfig id_cfg = app_cfg;
  id_cfg.name = "identity";
  auto& identity =
      scenario.add_app<app::SyntheticApp>(peer, id_cfg, app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] {
    return app.registered() && identity.registered() &&
           host.peer_count() == 1 && peer.peer_count() == 1;
  }));
  const proto::AppId id = app.app_id();

  // Two watchers at the peer server: the remote subscription must survive
  // the first logout (refcount 2 -> 1) and end at the second (1 -> 0).
  auto& alice = scenario.add_client("alice", peer);
  auto& bob = scenario.add_client("bob", peer);
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario.net(), alice, id));
  ASSERT_TRUE(workload::sync_login(scenario.net(), bob).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario.net(), bob, id).value().ok);

  EXPECT_EQ(peer.subscriber_count(id), 2u);
  EXPECT_TRUE(peer.app_remote_subscribed(id));
  ASSERT_TRUE(host.lock_holder(id).has_value());
  EXPECT_EQ(host.lock_holder(id)->user, "alice");

  // Alice leaves: her lock interest at the remote host must be forgotten,
  // but bob still watches, so the peer stays subscribed.
  ASSERT_TRUE(sync_logout(scenario.net(), alice));
  ASSERT_TRUE(scenario.run_until([&] { return !host.lock_holder(id); }));
  EXPECT_EQ(peer.subscriber_count(id), 1u);
  EXPECT_TRUE(peer.app_remote_subscribed(id));

  // Bob leaves: watcher refcount hits zero -> unsubscribe at the host.
  ASSERT_TRUE(sync_logout(scenario.net(), bob));
  EXPECT_EQ(peer.subscriber_count(id), 0u);
  EXPECT_FALSE(peer.app_remote_subscribed(id));
  ASSERT_TRUE(scenario.run_until([&] {
    return host.subscriber_count(id) == 0;
  }));
  EXPECT_TRUE(host.subscriber_index_consistent());
  EXPECT_TRUE(peer.subscriber_index_consistent());
}

// ---------------------------------------------------------------------------
// Wire compatibility: shared-event encoding == struct encoding
// ---------------------------------------------------------------------------

TEST(FanoutWireCompat, SharedPollReplyEncodingIsByteIdentical) {
  proto::ClientEvent a;
  a.kind = proto::EventKind::chat;
  a.seq = 41;
  a.app = proto::AppId{3, 7};
  a.at = 123456789;
  a.user = "alice";
  a.text = "hello group";
  a.subgroup = "team";
  a.shared = true;
  proto::ClientEvent b;
  b.kind = proto::EventKind::response;
  b.seq = 42;
  b.app = proto::AppId{3, 7};
  b.user = "bob";
  b.request_id = 9;
  b.param = "dt";
  b.value = 0.25;
  b.metrics = {{"residual", 0.5}, {"iters", 12.0}};
  b.iteration = 99;

  proto::PollReply reply;
  reply.ok = true;
  reply.message = "ok";
  reply.events = {a, b};
  reply.backlog = 5;

  const std::vector<proto::SharedClientEvent> shared = {
      std::make_shared<const proto::ClientEvent>(a),
      std::make_shared<const proto::ClientEvent>(b)};
  const util::Bytes via_struct = proto::encode_body(reply);
  const util::Bytes via_shared =
      proto::encode_poll_reply_shared(true, "ok", shared, 5);
  ASSERT_EQ(via_struct, via_shared);

  const proto::PollReply decoded = proto::decode_poll_reply(via_shared);
  ASSERT_EQ(decoded.events.size(), 2u);
  EXPECT_EQ(decoded.events[0], a);
  EXPECT_EQ(decoded.events[1], b);
  EXPECT_EQ(decoded.backlog, 5u);
}

// ---------------------------------------------------------------------------
// Equivalence: fast path delivers exactly what the legacy scan delivered
// ---------------------------------------------------------------------------

std::vector<std::vector<proto::ClientEvent>> run_collab_round(
    bool fast_path) {
  workload::ScenarioConfig cfg;
  cfg.server_template.fanout_fast_path = fast_path;
  workload::Scenario scenario(cfg);
  auto& server = scenario.add_server("s", 1);

  app::AppConfig app_cfg;
  app_cfg.name = "sim";
  app_cfg.acl = workload::make_acl({{"u0", Privilege::steer},
                                    {"u1", Privilege::read_write},
                                    {"u2", Privilege::read_write},
                                    {"u3", Privilege::read_write}});
  app_cfg.step_time = util::milliseconds(2);
  app_cfg.update_every = 5;
  app_cfg.interact_every = 0;
  auto& app =
      scenario.add_app<app::SyntheticApp>(server, app_cfg, app::SyntheticSpec{});
  if (!scenario.run_until([&] { return app.registered(); })) return {};
  const proto::AppId id = app.app_id();

  std::vector<core::DiscoverClient*> clients;
  for (int i = 0; i < 4; ++i) {
    auto& c = scenario.add_client("u" + std::to_string(i), server);
    if (!workload::sync_login(scenario.net(), c).value().ok) return {};
    if (!workload::sync_select(scenario.net(), c, id).value().ok) return {};
    clients.push_back(&c);
  }
  // Mixed delivery classes: u1 gets push, u2 joins a sub-group, u3 opts out
  // of collaboration.
  (void)workload::sync_group_op(scenario.net(), *clients[1], id,
                                proto::GroupOp::enable_push, "");
  (void)workload::sync_group_op(scenario.net(), *clients[2], id,
                                proto::GroupOp::join_subgroup, "team");
  (void)workload::sync_group_op(scenario.net(), *clients[3], id,
                                proto::GroupOp::disable_collab, "");

  (void)workload::sync_collab_post(scenario.net(), *clients[0], id,
                                   proto::EventKind::chat, "hi all");
  (void)workload::sync_collab_post(scenario.net(), *clients[2], id,
                                   proto::EventKind::chat, "team only");
  (void)workload::sync_command(scenario.net(), *clients[0], id,
                               proto::CommandKind::query_status, "");
  scenario.run_for(util::milliseconds(500));
  for (int round = 0; round < 5; ++round) {
    for (auto* c : clients) (void)workload::sync_poll(scenario.net(), *c, id);
    scenario.run_for(util::milliseconds(50));
  }

  std::vector<std::vector<proto::ClientEvent>> out;
  for (auto* c : clients) out.push_back(c->received_events());
  return out;
}

TEST(FanoutEquivalence, FastPathMatchesLegacyScan) {
  const auto fast = run_collab_round(true);
  const auto legacy = run_collab_round(false);
  ASSERT_FALSE(fast.empty());
  ASSERT_EQ(fast.size(), legacy.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i], legacy[i]) << "client " << i << " event divergence";
  }
}

}  // namespace
}  // namespace discover
