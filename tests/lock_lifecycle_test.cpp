// Steering-lock lifecycle (DESIGN.md "Steering-lock lifecycle").
//
// Two layers of coverage: a property test driving LockManager through
// random acquire/release/forget/crash interleavings against the safety
// ("never two holders") and liveness ("no stranded lock, every callback
// resolves exactly once") invariants, and scenario tests proving the
// server-level lifecycle — lease renewal defusing the stale timer, and
// waiter deadlines denying a starved waiter.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "app/synthetic.h"
#include "core/lock_manager.h"
#include "util/rng.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using core::LockIdentity;
using core::LockManager;
using security::Privilege;
using workload::make_acl;

const proto::AppId kApp{1, 1};

// ---------------------------------------------------------------------------
// Property test: random interleavings against a reference model
// ---------------------------------------------------------------------------

class LockLifecycleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LockLifecycleFuzz, OneHolderNoStrandedLockExactlyOnceCallbacks) {
  util::Rng rng(GetParam());
  LockManager lm;
  const std::vector<LockIdentity> users = {
      {"a", 1}, {"b", 1}, {"c", 2}, {"a", 2}, {"d", 3}, {"e", 3}};
  const auto key = [](const LockIdentity& w) {
    return w.user + "@" + std::to_string(w.server);
  };

  // Per-request bookkeeping: every callback must fire exactly once over
  // the request's lifetime; `outstanding` holds requests not yet resolved
  // as denied (i.e. queued or currently holding).
  struct Request {
    LockIdentity who;
    std::shared_ptr<int> fired;
    std::uint64_t ticket = 0;
  };
  std::vector<std::shared_ptr<int>> all_fired;
  std::map<std::string, Request> outstanding;
  std::set<std::string> dead_servers;

  const auto issue = [&](const LockIdentity& u) {
    if (outstanding.count(key(u)) != 0) return;  // server layer forbids
    auto fired = std::make_shared<int>(0);
    all_fired.push_back(fired);
    const std::string k = key(u);
    const auto res = lm.request(kApp, u, [&outstanding, fired, k](bool g) {
      ++*fired;
      if (!g) outstanding.erase(k);  // denied resolves the request
    });
    // Either granted on the spot (entry = holder) or queued (entry =
    // waiter); a synchronous denial is impossible by the API contract.
    outstanding[k] = Request{u, fired, res.ticket};
  };

  for (int step = 0; step < 3000; ++step) {
    const LockIdentity& u = users[rng.below(users.size())];
    switch (rng.below(6)) {
      case 0:
      case 1:
        issue(u);
        break;
      case 2:
        if (lm.release(kApp, u).ok()) outstanding.erase(key(u));
        break;
      case 3:
        lm.forget(kApp, u);
        outstanding.erase(key(u));
        break;
      case 4: {
        // Waiter deadline: expire a random outstanding ticket.
        if (outstanding.empty()) break;
        auto it = outstanding.begin();
        std::advance(it, static_cast<long>(rng.below(outstanding.size())));
        lm.expire_ticket(kApp, it->second.ticket);
        break;
      }
      case 5: {
        // Peer crash: reap one of the three origin servers.
        const std::uint32_t server =
            static_cast<std::uint32_t>(1 + rng.below(3));
        lm.reap_server(server);
        for (auto it = outstanding.begin(); it != outstanding.end();) {
          it = it->second.who.server == server ? outstanding.erase(it)
                                               : ++it;
        }
        // SAFETY after a crash: the dead server can hold nothing.
        const auto h = lm.holder(kApp);
        EXPECT_TRUE(!h || h->server != server)
            << "reaped server still holds the lock";
        break;
      }
    }
    // SAFETY every step: at most one holder (by construction of the API)
    // and the holder must correspond to an unresolved request.
    const auto h = lm.holder(kApp);
    if (h) {
      EXPECT_EQ(outstanding.count(key(*h)), 1u)
          << "holder " << key(*h) << " has no outstanding request";
    }
    // Callbacks so far: never more than once.
    for (const auto& f : all_fired) EXPECT_LE(*f, 1) << "callback refired";
  }

  // LIVENESS drain: forget everyone; nothing may stay queued or held, and
  // every callback must have resolved exactly once.
  for (const auto& u : users) lm.forget(kApp, u);
  EXPECT_EQ(lm.queue_length(kApp), 0u);
  EXPECT_FALSE(lm.holder(kApp).has_value());
  for (const auto& f : all_fired) {
    EXPECT_EQ(*f, 1) << "request resolved " << *f << " times";
  }
  // Accounting closes: every grant was eventually released.
  EXPECT_EQ(lm.grants(), lm.releases());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockLifecycleFuzz,
                         ::testing::Values(17, 23, 29, 31, 37, 41, 43, 47));

// ---------------------------------------------------------------------------
// Scenario tests: server-level lease renewal and waiter deadlines
// ---------------------------------------------------------------------------

app::AppConfig lifecycle_app(const std::string& name) {
  app::AppConfig cfg;
  cfg.name = name;
  cfg.acl = make_acl({{"alice", Privilege::steer},
                      {"carol", Privilege::steer}});
  cfg.step_time = util::milliseconds(1);
  cfg.update_every = 5;
  cfg.interact_every = 10;
  cfg.interaction_window = util::milliseconds(1);
  return cfg;
}

TEST(LockLifecycleTest, RenewedLeaseIsNotExpiredByStaleTimer) {
  workload::ScenarioConfig cfg;
  cfg.server_template.lock_lease = util::milliseconds(200);
  workload::Scenario scenario(cfg);
  auto& server = scenario.add_server("s", 1);
  auto& app = scenario.add_app<app::SyntheticApp>(server, lifecycle_app("ren"),
                                                  app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return app.registered(); }));
  const proto::AppId id = app.app_id();

  auto& alice = scenario.add_client("alice", server);
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario.net(), alice, id));
  ASSERT_EQ(server.lock_holder(id)->user, "alice");
  const util::TimePoint granted_at = scenario.net().now();

  // Renew halfway through the lease via an idempotent re-acquire.
  scenario.run_for(util::milliseconds(100));
  ASSERT_TRUE(workload::sync_command(scenario.net(), alice, id,
                                     proto::CommandKind::acquire_lock)
                  .value()
                  .accepted);
  const util::TimePoint renewed_at = scenario.net().now();
  EXPECT_EQ(server.locks().renewals(), 1u);

  // Past the ORIGINAL lease deadline: the stale timer must not fire (the
  // renewal bumped the generation it captured).
  scenario.run_for(granted_at + util::milliseconds(250) -
                   scenario.net().now());
  ASSERT_TRUE(server.lock_holder(id).has_value());
  EXPECT_EQ(server.lock_holder(id)->user, "alice");
  EXPECT_EQ(server.stats().lock_leases_expired, 0u);

  // Past the RENEWED deadline with no further renewal: now it expires.
  scenario.run_for(renewed_at + util::milliseconds(250) -
                   scenario.net().now());
  EXPECT_FALSE(server.lock_holder(id).has_value());
  EXPECT_EQ(server.stats().lock_leases_expired, 1u);
}

TEST(LockLifecycleTest, StarvedWaiterIsDeniedAtDeadline) {
  workload::ScenarioConfig cfg;
  cfg.server_template.lock_wait_deadline = util::milliseconds(100);
  workload::Scenario scenario(cfg);
  auto& server = scenario.add_server("s", 1);
  auto& app = scenario.add_app<app::SyntheticApp>(server, lifecycle_app("dl"),
                                                  app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return app.registered(); }));
  const proto::AppId id = app.app_id();

  auto& alice = scenario.add_client("alice", server);
  auto& carol = scenario.add_client("carol", server);
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario.net(), alice, id));
  ASSERT_TRUE(workload::sync_login(scenario.net(), carol).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario.net(), carol, id).value().ok);
  ASSERT_TRUE(workload::sync_command(scenario.net(), carol, id,
                                     proto::CommandKind::acquire_lock)
                  .value()
                  .accepted);
  EXPECT_EQ(server.lock_queue_length(id), 1u);

  // Alice never lets go; carol's wait must resolve as denied, not starve.
  scenario.run_for(util::milliseconds(150));
  EXPECT_EQ(server.lock_queue_length(id), 0u);
  EXPECT_EQ(server.lock_holder(id)->user, "alice");
  EXPECT_EQ(server.stats().lock_waiters_expired, 1u);

  (void)workload::sync_poll(scenario.net(), carol, id);
  bool carol_denied = false;
  for (const auto& ev : carol.received_events()) {
    if (ev.kind == proto::EventKind::lock_notice && ev.user == "carol" &&
        ev.text == "denied") {
      carol_denied = true;
    }
  }
  EXPECT_TRUE(carol_denied);
}

TEST(LockLifecycleTest, RetriedForgetLocksFreesRemoteLockThroughOutage) {
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(200);
  cfg.server_template.orb_call_timeout = util::milliseconds(300);
  cfg.server_template.peer_suspect_threshold = 0;  // isolate the retry path
  cfg.server_template.lock_lease = util::seconds(30);  // backstop only
  cfg.server_template.forget_locks_attempts = 6;
  cfg.server_template.forget_locks_backoff = util::milliseconds(200);
  workload::Scenario scenario(cfg);

  auto& near = scenario.add_server("near", 1);
  auto& host = scenario.add_server("host", 2);
  auto& app = scenario.add_app<app::SyntheticApp>(host, lifecycle_app("rem"),
                                                  app::SyntheticSpec{});
  scenario.add_app<app::SyntheticApp>(near, lifecycle_app("near-id"),
                                      app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] {
    return app.registered() && near.peer_count() == 1 &&
           host.peer_count() == 1;
  }));
  const proto::AppId id = app.app_id();

  auto& alice = scenario.add_client("alice", near);
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario.net(), alice, id));
  ASSERT_EQ(host.lock_holder(id)->user, "alice");

  // Logout lands during a 1.5 s WAN blackout: the old fire-and-forget
  // forget_locks relay would vanish and strand the lock until the 30 s
  // lease; the retrying relay delivers it shortly after the heal.
  scenario.partition(near, host);
  scenario.net().schedule(host.node(), util::milliseconds(1500),
                          [&] { scenario.heal(near, host); });
  alice.logout([](util::Result<proto::CollabAck>) {});
  const util::TimePoint logout_at = scenario.net().now();

  ASSERT_TRUE(scenario.run_until(
      [&] { return !host.lock_holder(id).has_value(); }, util::seconds(15)));
  EXPECT_LT(scenario.net().now() - logout_at, util::seconds(10));
  EXPECT_GE(near.stats().forget_locks_retries, 1u);
  EXPECT_EQ(near.stats().forget_locks_abandoned, 0u);
  // The lock was relayed free, not expired or reaped.
  EXPECT_EQ(host.stats().lock_leases_expired, 0u);
  EXPECT_EQ(host.stats().lock_holders_reaped, 0u);
}

TEST(LockLifecycleTest, DirectorySurfacesHolderAndQueueDepth) {
  workload::ScenarioConfig cfg;
  workload::Scenario scenario(cfg);
  auto& server = scenario.add_server("s", 1);
  auto& app = scenario.add_app<app::SyntheticApp>(server, lifecycle_app("dir"),
                                                  app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return app.registered(); }));
  const proto::AppId id = app.app_id();

  auto& alice = scenario.add_client("alice", server);
  auto& carol = scenario.add_client("carol", server);
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario.net(), alice, id));
  ASSERT_TRUE(workload::sync_login(scenario.net(), carol).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario.net(), carol, id).value().ok);
  ASSERT_TRUE(workload::sync_command(scenario.net(), carol, id,
                                     proto::CommandKind::acquire_lock)
                  .value()
                  .accepted);

  const auto apps = server.visible_apps("carol");
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_EQ(apps[0].lock_holder,
            "alice@" + std::to_string(server.node().value()));
  EXPECT_EQ(apps[0].lock_queue, 1u);
}

}  // namespace
}  // namespace discover
