#include <gtest/gtest.h>

#include "core/lock_manager.h"
#include "util/rng.h"

namespace discover::core {
namespace {

const proto::AppId kApp{1, 1};
const proto::AppId kOther{1, 2};

LockIdentity who(const std::string& user, std::uint32_t server = 1) {
  return LockIdentity{user, server};
}

TEST(LockManagerTest, ImmediateGrantWhenFree) {
  LockManager lm;
  bool granted = false;
  const auto r = lm.request(kApp, who("alice"), [&](bool g) { granted = g; });
  EXPECT_TRUE(r.granted);
  EXPECT_EQ(r.ticket, 0u);
  EXPECT_TRUE(granted);
  EXPECT_EQ(lm.holder(kApp)->user, "alice");
  EXPECT_EQ(lm.grants(), 1u);
}

TEST(LockManagerTest, SecondRequesterQueuesFifo) {
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  std::vector<std::string> grant_order;
  EXPECT_FALSE(lm.request(kApp, who("bob"), [&](bool g) {
                    if (g) grant_order.push_back("bob");
                  }).granted);
  EXPECT_FALSE(lm.request(kApp, who("carol"), [&](bool g) {
                    if (g) grant_order.push_back("carol");
                  }).granted);
  EXPECT_EQ(lm.queue_length(kApp), 2u);

  ASSERT_TRUE(lm.release(kApp, who("alice")).ok());
  EXPECT_EQ(lm.holder(kApp)->user, "bob");
  ASSERT_TRUE(lm.release(kApp, who("bob")).ok());
  EXPECT_EQ(lm.holder(kApp)->user, "carol");
  EXPECT_EQ(grant_order, (std::vector<std::string>{"bob", "carol"}));
}

TEST(LockManagerTest, ReacquireByHolderIsIdempotent) {
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  bool granted = false;
  EXPECT_TRUE(
      lm.request(kApp, who("alice"), [&](bool g) { granted = g; }).granted);
  EXPECT_TRUE(granted);
  EXPECT_EQ(lm.queue_length(kApp), 0u);
}

TEST(LockManagerTest, ReacquireBumpsGenerationRenewingLease) {
  // The lease timer armed at the original grant remembers the generation;
  // a renewal must bump it or the stale timer expires the renewed lock.
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  const std::uint64_t before = lm.generation(kApp);
  lm.request(kApp, who("alice"), [](bool) {});
  EXPECT_GT(lm.generation(kApp), before);
  EXPECT_EQ(lm.renewals(), 1u);
  EXPECT_EQ(lm.grants(), 1u);  // a renewal is not a new grant
}

TEST(LockManagerTest, SameUserDifferentServerIsDifferentIdentity) {
  // Paper §5.2.4: lock identity is maintained at the host; a user portal at
  // another server is a distinct requester.
  LockManager lm;
  lm.request(kApp, who("alice", 1), [](bool) {});
  EXPECT_FALSE(lm.request(kApp, who("alice", 2), [](bool) {}).granted);
  EXPECT_EQ(lm.queue_length(kApp), 1u);
}

TEST(LockManagerTest, ReleaseByNonHolderFails) {
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  const auto s = lm.release(kApp, who("bob"));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, util::Errc::permission_denied);
  EXPECT_FALSE(lm.release(kOther, who("alice")).ok());  // not held at all
}

TEST(LockManagerTest, ForgetRemovesWaiterAndNotifiesDenied) {
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  bool bob_result = true;
  lm.request(kApp, who("bob"), [&](bool g) { bob_result = g; });
  lm.forget(kApp, who("bob"));
  EXPECT_FALSE(bob_result);
  EXPECT_EQ(lm.queue_length(kApp), 0u);
}

TEST(LockManagerTest, ForgetHolderPromotesNext) {
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  bool bob_granted = false;
  lm.request(kApp, who("bob"), [&](bool g) { bob_granted = g; });
  lm.forget(kApp, who("alice"));
  EXPECT_TRUE(bob_granted);
  EXPECT_EQ(lm.holder(kApp)->user, "bob");
}

TEST(LockManagerTest, DropAppDeniesAllWaiters) {
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  int denied = 0;
  lm.request(kApp, who("bob"), [&](bool g) { denied += g ? 0 : 1; });
  lm.request(kApp, who("carol"), [&](bool g) { denied += g ? 0 : 1; });
  const auto evicted = lm.drop_app(kApp);
  EXPECT_EQ(denied, 2);
  EXPECT_FALSE(lm.holder(kApp).has_value());
  // Eviction counts as a release and reports who lost the lock so the
  // server can publish a notice (same semantics as forget).
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->user, "alice");
  EXPECT_EQ(lm.releases(), 1u);
  EXPECT_FALSE(lm.drop_app(kApp).has_value());  // idempotent
}

TEST(LockManagerTest, ExpireTicketRemovesOnlyThatWait) {
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  bool bob_result = true;
  const auto bob = lm.request(kApp, who("bob"), [&](bool g) { bob_result = g; });
  ASSERT_FALSE(bob.granted);
  ASSERT_NE(bob.ticket, 0u);
  EXPECT_TRUE(lm.expire_ticket(kApp, bob.ticket));
  EXPECT_FALSE(bob_result);
  EXPECT_EQ(lm.queue_length(kApp), 0u);
  // The ticket is gone: a later timer firing for it must be a no-op, even
  // after the same identity queues again under a fresh ticket.
  EXPECT_FALSE(lm.expire_ticket(kApp, bob.ticket));
  bool bob2_result = true;
  const auto bob2 =
      lm.request(kApp, who("bob"), [&](bool g) { bob2_result = g; });
  ASSERT_FALSE(bob2.granted);
  EXPECT_NE(bob2.ticket, bob.ticket);
  EXPECT_FALSE(lm.expire_ticket(kApp, bob.ticket));
  EXPECT_EQ(lm.queue_length(kApp), 1u);
  EXPECT_TRUE(bob2_result);  // untouched so far
}

TEST(LockManagerTest, ExpireTicketIgnoresGrantedWait) {
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  bool bob_granted = false;
  const auto bob =
      lm.request(kApp, who("bob"), [&](bool g) { bob_granted = g; });
  ASSERT_TRUE(lm.release(kApp, who("alice")).ok());
  EXPECT_TRUE(bob_granted);
  // The deadline timer races the grant and loses: holder is untouched.
  EXPECT_FALSE(lm.expire_ticket(kApp, bob.ticket));
  EXPECT_EQ(lm.holder(kApp)->user, "bob");
}

TEST(LockManagerTest, ReapServerEvictsHolderAndPromotesSurvivor) {
  LockManager lm;
  lm.request(kApp, who("alice", 2), [](bool) {});
  bool bob_granted = false;
  lm.request(kApp, who("bob", 1), [&](bool g) { bob_granted = g; });
  const auto reaped = lm.reap_server(2);
  ASSERT_EQ(reaped.size(), 1u);
  EXPECT_EQ(reaped[0].app, kApp);
  ASSERT_TRUE(reaped[0].evicted_holder.has_value());
  EXPECT_EQ(reaped[0].evicted_holder->user, "alice");
  ASSERT_TRUE(reaped[0].promoted.has_value());
  EXPECT_EQ(reaped[0].promoted->user, "bob");
  EXPECT_TRUE(bob_granted);
  EXPECT_EQ(lm.holder(kApp)->user, "bob");
  EXPECT_EQ(lm.releases(), 1u);
}

TEST(LockManagerTest, ReapServerNeverPromotesDeadServersWaiter) {
  LockManager lm;
  lm.request(kApp, who("alice", 2), [](bool) {});
  bool dave_granted = false;
  lm.request(kApp, who("dave", 2), [&](bool g) { dave_granted = g; });
  bool carol_granted = false;
  lm.request(kApp, who("carol", 1), [&](bool g) { carol_granted = g; });
  const auto reaped = lm.reap_server(2);
  ASSERT_EQ(reaped.size(), 1u);
  ASSERT_EQ(reaped[0].dropped_waiters.size(), 1u);
  EXPECT_EQ(reaped[0].dropped_waiters[0].user, "dave");
  // dave (queued ahead of carol, but from the dead server) was purged
  // before promotion; the lock skips straight to the survivor.
  EXPECT_FALSE(dave_granted);
  EXPECT_TRUE(carol_granted);
  EXPECT_EQ(lm.holder(kApp)->user, "carol");
}

TEST(LockManagerTest, ReapServerUntouchedWhenNothingMatches) {
  LockManager lm;
  lm.request(kApp, who("alice", 1), [](bool) {});
  EXPECT_TRUE(lm.reap_server(9).empty());
  EXPECT_EQ(lm.holder(kApp)->user, "alice");
  EXPECT_EQ(lm.releases(), 0u);
}

TEST(LockManagerTest, LocksAreIndependentAcrossApps) {
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  bool granted = false;
  EXPECT_TRUE(
      lm.request(kOther, who("bob"), [&](bool g) { granted = g; }).granted);
  EXPECT_TRUE(granted);
}

/// Property: under random request/release/forget traffic there is never a
/// moment with two holders, every grant callback fires exactly once, and
/// grants - releases == (holder present ? 1 : 0) at the end.
class LockFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LockFuzzTest, SingleWriterInvariantHolds) {
  util::Rng rng(GetParam());
  LockManager lm;
  const std::vector<LockIdentity> users = {
      who("a", 1), who("b", 1), who("a", 2), who("c", 3), who("d", 2)};
  std::map<std::string, int> callback_count;  // key: user@server
  const auto key = [](const LockIdentity& w) {
    return w.user + "@" + std::to_string(w.server);
  };

  std::set<std::string> waiting_or_holding;
  for (int i = 0; i < 2000; ++i) {
    const LockIdentity& u = users[rng.below(users.size())];
    const int action = static_cast<int>(rng.below(3));
    if (action == 0) {
      // Avoid double-queuing the same identity (server layer prevents it).
      if (waiting_or_holding.count(key(u)) != 0) continue;
      waiting_or_holding.insert(key(u));
      lm.request(kApp, u, [&, k = key(u)](bool granted) {
        ++callback_count[k];
        if (!granted) waiting_or_holding.erase(k);
      });
    } else if (action == 1) {
      if (lm.release(kApp, u).ok()) waiting_or_holding.erase(key(u));
    } else {
      lm.forget(kApp, u);
      waiting_or_holding.erase(key(u));
    }
    // Invariant: callbacks never fire more than once per outstanding
    // request; with our no-double-queue discipline each user's count is
    // bounded by their number of requests, and holder is unique by
    // construction of the API (single std::optional) - verify consistency:
    const auto h = lm.holder(kApp);
    if (h) {
      EXPECT_TRUE(waiting_or_holding.count(key(*h)) != 0)
          << "holder must have an outstanding request";
    }
  }
  // Drain: release/forget everything; every waiter must resolve.
  for (const auto& u : users) lm.forget(kApp, u);
  EXPECT_EQ(lm.queue_length(kApp), 0u);
  EXPECT_FALSE(lm.holder(kApp).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockFuzzTest,
                         ::testing::Values(3, 5, 7, 9, 11, 13));

}  // namespace
}  // namespace discover::core
