#include <gtest/gtest.h>

#include "core/lock_manager.h"
#include "util/rng.h"

namespace discover::core {
namespace {

const proto::AppId kApp{1, 1};
const proto::AppId kOther{1, 2};

LockIdentity who(const std::string& user, std::uint32_t server = 1) {
  return LockIdentity{user, server};
}

TEST(LockManagerTest, ImmediateGrantWhenFree) {
  LockManager lm;
  bool granted = false;
  EXPECT_TRUE(lm.request(kApp, who("alice"), [&](bool g) { granted = g; }));
  EXPECT_TRUE(granted);
  EXPECT_EQ(lm.holder(kApp)->user, "alice");
  EXPECT_EQ(lm.grants(), 1u);
}

TEST(LockManagerTest, SecondRequesterQueuesFifo) {
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  std::vector<std::string> grant_order;
  EXPECT_FALSE(lm.request(kApp, who("bob"), [&](bool g) {
    if (g) grant_order.push_back("bob");
  }));
  EXPECT_FALSE(lm.request(kApp, who("carol"), [&](bool g) {
    if (g) grant_order.push_back("carol");
  }));
  EXPECT_EQ(lm.queue_length(kApp), 2u);

  ASSERT_TRUE(lm.release(kApp, who("alice")).ok());
  EXPECT_EQ(lm.holder(kApp)->user, "bob");
  ASSERT_TRUE(lm.release(kApp, who("bob")).ok());
  EXPECT_EQ(lm.holder(kApp)->user, "carol");
  EXPECT_EQ(grant_order, (std::vector<std::string>{"bob", "carol"}));
}

TEST(LockManagerTest, ReacquireByHolderIsIdempotent) {
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  bool granted = false;
  EXPECT_TRUE(lm.request(kApp, who("alice"), [&](bool g) { granted = g; }));
  EXPECT_TRUE(granted);
  EXPECT_EQ(lm.queue_length(kApp), 0u);
}

TEST(LockManagerTest, SameUserDifferentServerIsDifferentIdentity) {
  // Paper §5.2.4: lock identity is maintained at the host; a user portal at
  // another server is a distinct requester.
  LockManager lm;
  lm.request(kApp, who("alice", 1), [](bool) {});
  EXPECT_FALSE(lm.request(kApp, who("alice", 2), [](bool) {}));
  EXPECT_EQ(lm.queue_length(kApp), 1u);
}

TEST(LockManagerTest, ReleaseByNonHolderFails) {
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  const auto s = lm.release(kApp, who("bob"));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, util::Errc::permission_denied);
  EXPECT_FALSE(lm.release(kOther, who("alice")).ok());  // not held at all
}

TEST(LockManagerTest, ForgetRemovesWaiterAndNotifiesDenied) {
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  bool bob_result = true;
  lm.request(kApp, who("bob"), [&](bool g) { bob_result = g; });
  lm.forget(kApp, who("bob"));
  EXPECT_FALSE(bob_result);
  EXPECT_EQ(lm.queue_length(kApp), 0u);
}

TEST(LockManagerTest, ForgetHolderPromotesNext) {
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  bool bob_granted = false;
  lm.request(kApp, who("bob"), [&](bool g) { bob_granted = g; });
  lm.forget(kApp, who("alice"));
  EXPECT_TRUE(bob_granted);
  EXPECT_EQ(lm.holder(kApp)->user, "bob");
}

TEST(LockManagerTest, DropAppDeniesAllWaiters) {
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  int denied = 0;
  lm.request(kApp, who("bob"), [&](bool g) { denied += g ? 0 : 1; });
  lm.request(kApp, who("carol"), [&](bool g) { denied += g ? 0 : 1; });
  lm.drop_app(kApp);
  EXPECT_EQ(denied, 2);
  EXPECT_FALSE(lm.holder(kApp).has_value());
}

TEST(LockManagerTest, LocksAreIndependentAcrossApps) {
  LockManager lm;
  lm.request(kApp, who("alice"), [](bool) {});
  bool granted = false;
  EXPECT_TRUE(lm.request(kOther, who("bob"), [&](bool g) { granted = g; }));
  EXPECT_TRUE(granted);
}

/// Property: under random request/release/forget traffic there is never a
/// moment with two holders, every grant callback fires exactly once, and
/// grants - releases == (holder present ? 1 : 0) at the end.
class LockFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LockFuzzTest, SingleWriterInvariantHolds) {
  util::Rng rng(GetParam());
  LockManager lm;
  const std::vector<LockIdentity> users = {
      who("a", 1), who("b", 1), who("a", 2), who("c", 3), who("d", 2)};
  std::map<std::string, int> callback_count;  // key: user@server
  const auto key = [](const LockIdentity& w) {
    return w.user + "@" + std::to_string(w.server);
  };

  std::set<std::string> waiting_or_holding;
  for (int i = 0; i < 2000; ++i) {
    const LockIdentity& u = users[rng.below(users.size())];
    const int action = static_cast<int>(rng.below(3));
    if (action == 0) {
      // Avoid double-queuing the same identity (server layer prevents it).
      if (waiting_or_holding.count(key(u)) != 0) continue;
      waiting_or_holding.insert(key(u));
      lm.request(kApp, u, [&, k = key(u)](bool granted) {
        ++callback_count[k];
        if (!granted) waiting_or_holding.erase(k);
      });
    } else if (action == 1) {
      if (lm.release(kApp, u).ok()) waiting_or_holding.erase(key(u));
    } else {
      lm.forget(kApp, u);
      waiting_or_holding.erase(key(u));
    }
    // Invariant: callbacks never fire more than once per outstanding
    // request; with our no-double-queue discipline each user's count is
    // bounded by their number of requests, and holder is unique by
    // construction of the API (single std::optional) - verify consistency:
    const auto h = lm.holder(kApp);
    if (h) {
      EXPECT_TRUE(waiting_or_holding.count(key(*h)) != 0)
          << "holder must have an outstanding request";
    }
  }
  // Drain: release/forget everything; every waiter must resolve.
  for (const auto& u : users) lm.forget(kApp, u);
  EXPECT_EQ(lm.queue_length(kApp), 0u);
  EXPECT_FALSE(lm.holder(kApp).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockFuzzTest,
                         ::testing::Values(3, 5, 7, 9, 11, 13));

}  // namespace
}  // namespace discover::core
