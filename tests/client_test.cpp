// DiscoverClient behaviour: multi-application sessions, request-id
// correlation, event handlers, logout semantics, unauthenticated access.
#include <gtest/gtest.h>

#include "app/synthetic.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;
using workload::make_acl;

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = &scenario_.add_server("s", 1);
    for (int i = 0; i < 2; ++i) {
      app::AppConfig cfg;
      cfg.name = "app" + std::to_string(i);
      cfg.acl = make_acl({{"alice", Privilege::steer}});
      cfg.step_time = util::milliseconds(1);
      cfg.update_every = 5;
      cfg.interact_every = 10;
      apps_.push_back(&scenario_.add_app<app::SyntheticApp>(
          *server_, cfg, app::SyntheticSpec{}));
    }
    ASSERT_TRUE(scenario_.run_until([&] {
      return apps_[0]->registered() && apps_[1]->registered();
    }));
  }

  workload::Scenario scenario_;
  core::DiscoverServer* server_ = nullptr;
  std::vector<app::SyntheticApp*> apps_;
};

TEST_F(ClientTest, TracksLoginStateAndKnownApps) {
  auto& alice = scenario_.add_client("alice", *server_);
  EXPECT_FALSE(alice.logged_in());
  auto login = workload::sync_login(scenario_.net(), alice);
  ASSERT_TRUE(login.value().ok);
  EXPECT_TRUE(alice.logged_in());
  EXPECT_EQ(alice.known_apps().size(), 2u);
  EXPECT_EQ(alice.token().user, "alice");

  bool out = false;
  scenario_.net().post(alice.node(), [&] {
    alice.logout([&](util::Result<proto::CollabAck> r) {
      out = r.ok() && r.value().ok;
    });
  });
  ASSERT_TRUE(workload::wait_for(scenario_.net(), [&] { return out; }));
  EXPECT_FALSE(alice.logged_in());
}

TEST_F(ClientTest, PollsTwoApplicationsIndependently) {
  auto& alice = scenario_.add_client("alice", *server_);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), alice).value().ok);
  for (auto* app : apps_) {
    ASSERT_TRUE(workload::sync_select(scenario_.net(), alice, app->app_id())
                    .value().ok);
  }
  scenario_.net().post(alice.node(), [&] {
    alice.start_polling(apps_[0]->app_id());
    alice.start_polling(apps_[1]->app_id());
  });
  scenario_.run_for(util::milliseconds(400));
  std::uint64_t from_0 = 0;
  std::uint64_t from_1 = 0;
  for (const auto& ev : alice.received_events()) {
    if (ev.app == apps_[0]->app_id()) ++from_0;
    if (ev.app == apps_[1]->app_id()) ++from_1;
  }
  EXPECT_GT(from_0, 0u);
  EXPECT_GT(from_1, 0u);
  scenario_.net().post(alice.node(), [&] {
    alice.stop_polling(apps_[0]->app_id());
    alice.stop_polling(apps_[1]->app_id());
  });
  scenario_.run_for(util::milliseconds(50));
}

TEST_F(ClientTest, EventHandlerFiresPerEvent) {
  auto& alice = scenario_.add_client("alice", *server_);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), alice).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario_.net(), alice,
                                    apps_[0]->app_id())
                  .value().ok);
  std::uint64_t handled = 0;
  alice.set_event_handler([&](const proto::ClientEvent&) { ++handled; });
  scenario_.run_for(util::milliseconds(100));
  (void)workload::sync_poll(scenario_.net(), alice, apps_[0]->app_id());
  EXPECT_EQ(handled, alice.events_received());
  EXPECT_GT(handled, 0u);
}

TEST_F(ClientTest, OperationsWithoutLoginAreRejected) {
  auto& ghost = scenario_.add_client("alice", *server_);
  // Never logged in: empty token fails verification server-side.
  auto sel = workload::sync_select(scenario_.net(), ghost,
                                   apps_[0]->app_id());
  ASSERT_TRUE(sel.ok());
  EXPECT_FALSE(sel.value().ok);
  auto poll = workload::sync_poll(scenario_.net(), ghost, apps_[0]->app_id());
  ASSERT_TRUE(poll.ok());
  EXPECT_FALSE(poll.value().ok);
  auto cmd = workload::sync_command(scenario_.net(), ghost,
                                    apps_[0]->app_id(),
                                    proto::CommandKind::get_param, "param_0");
  ASSERT_TRUE(cmd.ok());
  EXPECT_FALSE(cmd.value().accepted);
}

TEST_F(ClientTest, CommandWithoutSelectIsRejected) {
  auto& alice = scenario_.add_client("alice", *server_);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), alice).value().ok);
  auto cmd = workload::sync_command(scenario_.net(), alice,
                                    apps_[0]->app_id(),
                                    proto::CommandKind::get_param, "param_0");
  ASSERT_TRUE(cmd.ok());
  EXPECT_FALSE(cmd.value().accepted);
  EXPECT_NE(cmd.value().message.find("not selected"), std::string::npos);
}

TEST_F(ClientTest, SelectUnknownAppFails) {
  auto& alice = scenario_.add_client("alice", *server_);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), alice).value().ok);
  proto::AppId bogus{99, 7};
  auto sel = workload::sync_select(scenario_.net(), alice, bogus);
  ASSERT_TRUE(sel.ok());
  EXPECT_FALSE(sel.value().ok);
}

TEST_F(ClientTest, HistoryRequiresSelection) {
  auto& alice = scenario_.add_client("alice", *server_);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), alice).value().ok);
  auto hist = workload::sync_history(scenario_.net(), alice,
                                     apps_[0]->app_id(), 0, 10);
  ASSERT_TRUE(hist.ok());
  EXPECT_FALSE(hist.value().ok);
  ASSERT_TRUE(workload::sync_select(scenario_.net(), alice,
                                    apps_[0]->app_id())
                  .value().ok);
  auto hist2 = workload::sync_history(scenario_.net(), alice,
                                      apps_[0]->app_id(), 0, 10);
  EXPECT_TRUE(hist2.value().ok);
}

TEST_F(ClientTest, ResolveHomeRequiresValidToken) {
  auto& ghost = scenario_.add_client("alice", *server_);
  util::Errc code = util::Errc::ok;
  bool done = false;
  scenario_.net().post(ghost.node(), [&] {
    ghost.resolve_home(apps_[0]->app_id(), [&](util::Result<net::NodeId> r) {
      if (!r.ok()) code = r.error().code;
      done = true;
    });
  });
  ASSERT_TRUE(workload::wait_for(scenario_.net(), [&] { return done; }));
  EXPECT_EQ(code, util::Errc::unavailable);
}

}  // namespace
}  // namespace discover
