// DESIGN.md §5 security invariant, fuzzed end-to-end: "a client can never
// reach an application absent from its ACL; privilege rules apply to every
// command".  Random users with random privileges issue random commands;
// every acceptance must be justified by the ACL + lock state.
#include <gtest/gtest.h>

#include "app/synthetic.h"
#include "util/rng.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;

class SecurityFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SecurityFuzzTest, AcceptanceAlwaysJustifiedByAclAndLock) {
  util::Rng rng(GetParam());
  workload::Scenario scenario;
  auto& server = scenario.add_server("s", 1);

  const std::vector<Privilege> levels = {
      Privilege::read_only, Privilege::read_write, Privilege::steer};
  std::map<std::string, Privilege> granted;
  std::vector<security::AclEntry> acl;
  for (int i = 0; i < 5; ++i) {
    const std::string user = "u" + std::to_string(i);
    const Privilege p = levels[rng.below(levels.size())];
    granted[user] = p;
    acl.push_back({user, p, 0});
  }
  // And one user who is NOT on the ACL at all.
  granted["outsider"] = Privilege::none;

  app::AppConfig cfg;
  cfg.name = "fuzzed";
  cfg.acl = acl;
  cfg.step_time = util::milliseconds(1);
  cfg.update_every = 0;
  cfg.interact_every = 2;
  cfg.interaction_window = util::milliseconds(1);
  auto& app = scenario.add_app<app::SyntheticApp>(server, cfg,
                                                  app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return app.registered(); }));
  const proto::AppId id = app.app_id();

  // Outsiders cannot even log in.
  auto& outsider = scenario.add_client("outsider", server);
  auto login = workload::sync_login(scenario.net(), outsider);
  ASSERT_TRUE(login.ok());
  EXPECT_FALSE(login.value().ok);

  std::map<std::string, core::DiscoverClient*> clients;
  for (const auto& [user, priv] : granted) {
    if (priv == Privilege::none) continue;
    auto& c = scenario.add_client(user, server);
    ASSERT_TRUE(workload::sync_login(scenario.net(), c).value().ok);
    ASSERT_TRUE(workload::sync_select(scenario.net(), c, id).value().ok);
    clients[user] = &c;
  }

  const std::vector<proto::CommandKind> kinds = {
      proto::CommandKind::get_param,    proto::CommandKind::set_param,
      proto::CommandKind::query_status, proto::CommandKind::acquire_lock,
      proto::CommandKind::release_lock, proto::CommandKind::checkpoint,
      proto::CommandKind::pause_app,    proto::CommandKind::resume_app};

  for (int round = 0; round < 120; ++round) {
    auto it = clients.begin();
    std::advance(it, static_cast<long>(rng.below(clients.size())));
    const std::string& user = it->first;
    core::DiscoverClient& c = *it->second;
    const proto::CommandKind kind = kinds[rng.below(kinds.size())];
    const Privilege have = granted[user];
    const Privilege need = proto::required_privilege(kind);
    // Snapshot lock state BEFORE issuing (the command may change it).
    const auto holder = server.lock_holder(id);
    const bool holds_lock =
        holder.has_value() && holder->user == user &&
        holder->server == server.node().value();

    auto ack = workload::sync_command(scenario.net(), c, id, kind, "param_0",
                                      proto::ParamValue{rng.uniform()});
    ASSERT_TRUE(ack.ok());
    const bool accepted = ack.value().accepted;

    if (!security::allows(have, need)) {
      EXPECT_FALSE(accepted)
          << user << " (" << security::privilege_name(have) << ") ran "
          << proto::command_name(kind);
    } else if (kind == proto::CommandKind::acquire_lock) {
      EXPECT_TRUE(accepted);  // queues or grants, both are accepted
    } else if (kind == proto::CommandKind::release_lock) {
      EXPECT_TRUE(accepted);  // processed (may fail inside, still relayed)
    } else if (need != Privilege::read_only) {
      // Mutating commands additionally require holding the lock.
      EXPECT_EQ(accepted, holds_lock)
          << user << " ran " << proto::command_name(kind)
          << " holding=" << holds_lock;
    } else {
      EXPECT_TRUE(accepted)
          << user << " read command " << proto::command_name(kind);
    }
    // Let queued grants and app responses settle between rounds.
    if (rng.chance(0.3)) scenario.run_for(util::milliseconds(5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SecurityFuzzTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace discover
