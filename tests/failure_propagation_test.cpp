// Failure propagation across the peer network: application departure
// reaching remote watchers via the Control channel, ORB replies arriving
// after their caller timed out, and wire-format stability (golden bytes).
#include <gtest/gtest.h>

#include "app/synthetic.h"
#include "net/sim_network.h"
#include "orb/orb.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;
using workload::make_acl;

TEST(FailurePropagationTest, RemoteWatchersLearnOfAppDeparture) {
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  workload::Scenario scenario(cfg);
  auto& host = scenario.add_server("host", 1);
  auto& peer = scenario.add_server("peer", 2);

  app::AppConfig app_cfg;
  app_cfg.name = "mortal";
  app_cfg.acl = make_acl({{"alice", Privilege::steer}});
  app_cfg.step_time = util::milliseconds(1);
  app_cfg.update_every = 5;
  app_cfg.interact_every = 10;
  app_cfg.interaction_window = util::milliseconds(1);
  app_cfg.max_steps = 0;
  auto& mortal = scenario.add_app<app::SyntheticApp>(host, app_cfg,
                                                     app::SyntheticSpec{});
  app::AppConfig id_cfg = app_cfg;
  id_cfg.name = "identity";
  id_cfg.update_every = 0;
  scenario.add_app<app::SyntheticApp>(peer, id_cfg, app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] {
    return mortal.registered() && peer.peer_count() == 1 &&
           host.peer_count() == 1;
  }));
  const proto::AppId id = mortal.app_id();

  // Remote watcher at `peer` acquires the lock too.
  auto& alice = scenario.add_client("alice", peer);
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario.net(), alice, id));

  // Alice stops the app through steering: the host deregisters it, emits
  // app_departed on the Control channel, and the peer cleans up its remote
  // entry and notifies local watchers.
  ASSERT_TRUE(workload::sync_command(scenario.net(), alice, id,
                                     proto::CommandKind::stop_app)
                  .value().accepted);
  ASSERT_TRUE(scenario.run_until([&] { return mortal.finished(); }));
  ASSERT_TRUE(
      scenario.run_until([&] { return host.local_app_count() == 0; }));

  scenario.run_for(util::milliseconds(100));
  (void)workload::sync_poll(scenario.net(), alice, id);
  bool saw_departure = false;
  for (const auto& ev : alice.received_events()) {
    if (ev.kind == proto::EventKind::system &&
        ev.text.find("departed") != std::string::npos) {
      saw_departure = true;
    }
  }
  EXPECT_TRUE(saw_departure);
  // Further commands to the dead application fail cleanly.
  auto ack = workload::sync_command(scenario.net(), alice, id,
                                    proto::CommandKind::get_param, "param_0");
  ASSERT_TRUE(ack.ok());
  EXPECT_FALSE(ack.value().accepted);
}

TEST(FailurePropagationTest, LateOrbReplyAfterTimeoutIsDropped) {
  net::SimNetwork net;
  net.set_lan_model({util::milliseconds(50), 1e9});  // slow link

  class Echo : public orb::Servant {
   public:
    [[nodiscard]] std::string interface_name() const override { return "E"; }
    void dispatch(const std::string&, wire::Decoder&, wire::Encoder& out,
                  orb::DispatchContext&) override {
      out.u8(1);
    }
  };
  class Node : public net::MessageHandler {
   public:
    explicit Node(net::Network& n) : network(n) {}
    void init(net::NodeId self) {
      orb = std::make_unique<orb::Orb>(network, self);
    }
    void on_message(const net::Message& msg) override { orb->handle(msg); }
    net::Network& network;
    std::unique_ptr<orb::Orb> orb;
  };
  Node a(net);
  Node b(net);
  const net::NodeId na = net.add_node("a", &a);
  const net::NodeId nb = net.add_node("b", &b);
  a.init(na);
  b.init(nb);
  const orb::ObjectRef ref = b.orb->activate(std::make_shared<Echo>());

  // Round trip is 100 ms; the caller gives up after 10 ms.  The reply
  // arrives later and must be dropped without invoking the callback twice.
  int callbacks = 0;
  util::Errc code = util::Errc::ok;
  a.orb->invoke(
      ref, "ping", wire::Encoder{},
      [&](util::Result<util::Bytes> r) {
        ++callbacks;
        if (!r.ok()) code = r.error().code;
      },
      util::milliseconds(10));
  net.run_until_idle();
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(code, util::Errc::timeout);
}

TEST(FailurePropagationTest, PendingCallTableIsBoundedWithZeroTimeout) {
  // Regression: invoke() with timeout == 0 arms no timer, so calls to a
  // dead callee used to accumulate in the pending table forever.  The cap
  // evicts the oldest entry (failing it with resource_exhausted) instead.
  net::SimNetwork net;

  class Node : public net::MessageHandler {
   public:
    explicit Node(net::Network& n) : network(n) {}
    void init(net::NodeId self) {
      orb = std::make_unique<orb::Orb>(network, self);
    }
    void on_message(const net::Message& msg) override { orb->handle(msg); }
    net::Network& network;
    std::unique_ptr<orb::Orb> orb;
  };
  Node a(net);
  Node b(net);
  const net::NodeId na = net.add_node("a", &a);
  const net::NodeId nb = net.add_node("b", &b);
  a.init(na);
  b.init(nb);
  // A ref to an object the callee never answers for: the node is crashed,
  // so every request vanishes and no reply ever completes the call.
  orb::ObjectRef ref;
  ref.node = nb.value();
  ref.key = 42;
  net.crash_node(nb);

  a.orb->set_max_pending(16);
  int exhausted = 0;
  int other = 0;
  for (int i = 0; i < 100; ++i) {
    a.orb->invoke(ref, "ping", wire::Encoder{},
                  [&](util::Result<util::Bytes> r) {
                    if (!r.ok() &&
                        r.error().code == util::Errc::resource_exhausted) {
                      ++exhausted;
                    } else {
                      ++other;
                    }
                  },
                  /*timeout=*/0);
    EXPECT_LE(a.orb->pending_calls(), 16u);
  }
  net.run_until_idle();
  EXPECT_EQ(a.orb->pending_calls(), 16u);  // the survivors, still bounded
  EXPECT_EQ(exhausted, 84);
  EXPECT_EQ(other, 0);
}

TEST(WireGoldenTest, CdrLayoutIsStable) {
  // Pin the on-wire byte layout so protocol changes are deliberate: a u8
  // then an aligned u32 then a string.
  wire::Encoder e;
  e.u8(0xAA);
  e.u32(0x01020304);
  e.str("hi");
  const util::Bytes expected = {
      0xAA, 0x00, 0x00, 0x00,        // u8 + 3 pad bytes to align u32
      0x04, 0x03, 0x02, 0x01,        // u32 little-endian
      0x02, 0x00, 0x00, 0x00,        // string length (already aligned)
      'h',  'i',                     // characters, no terminator
  };
  EXPECT_EQ(e.data(), expected);
}

TEST(WireGoldenTest, FramedAppCommandLayoutIsStable) {
  proto::AppCommand cmd;
  cmd.app_id = {1, 2};
  cmd.request_id = 3;
  cmd.user = "u";
  cmd.kind = proto::CommandKind::set_param;
  cmd.param = "p";
  cmd.value = proto::ParamValue{true};
  const util::Bytes frame = proto::encode_framed(proto::FramedMessage{cmd});
  // Tag byte 6 (app_command) leads the frame.
  ASSERT_FALSE(frame.empty());
  EXPECT_EQ(frame[0], 6);
  // Total size is deterministic for this message.
  EXPECT_EQ(frame.size(), 39u);
}

TEST(FailurePropagationTest, PeerUnreachableLoginStillSucceedsLocally) {
  // A peer that stops processing (simulated by shutting it down but
  // leaving the trader offer around until expiry) must not block login:
  // the fan-out timeout caps the wait.
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  cfg.server_template.login_fanout_timeout = util::milliseconds(200);
  workload::Scenario scenario(cfg);
  auto& home = scenario.add_server("home", 1);
  auto& flaky = scenario.add_server("flaky", 2);

  app::AppConfig app_cfg;
  app_cfg.name = "local";
  app_cfg.acl = make_acl({{"alice", Privilege::steer}});
  app_cfg.step_time = util::milliseconds(1);
  app_cfg.update_every = 0;
  app_cfg.interact_every = 0;
  auto& local = scenario.add_app<app::SyntheticApp>(home, app_cfg,
                                                    app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] {
    return local.registered() && home.peer_count() == 1;
  }));

  // flaky goes dark without the graceful server_down broadcast: deactivate
  // its level-1 servant so authenticate calls fail fast with not_found.
  // (A fully silent peer is bounded by the fan-out timeout instead.)
  const_cast<orb::Orb&>(flaky.orb()).deactivate(1);

  auto& alice = scenario.add_client("alice", home);
  const util::TimePoint t0 = scenario.net().now();
  auto login = workload::sync_login(scenario.net(), alice);
  ASSERT_TRUE(login.ok());
  EXPECT_TRUE(login.value().ok);
  EXPECT_EQ(login.value().applications.size(), 1u);  // local app only
  EXPECT_LT(scenario.net().now() - t0, util::seconds(1));
}

}  // namespace
}  // namespace discover
