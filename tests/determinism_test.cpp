// DESIGN.md §5: SimNetwork determinism — identical scenario programs
// produce identical event traces, stats and traffic, bit for bit.  This is
// what makes every Sim experiment in EXPERIMENTS.md reproducible.
#include <gtest/gtest.h>

#include <sstream>

#include "app/reservoir.h"
#include "app/synthetic.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;
using workload::make_acl;

/// Runs a non-trivial two-site workload and fingerprints everything
/// observable: client event traces, server stats, traffic counters, final
/// simulation state.
std::string run_and_fingerprint(core::RemoteUpdateMode mode) {
  workload::ScenarioConfig cfg;
  cfg.server_template.remote_update_mode = mode;
  cfg.server_template.remote_poll_period = util::milliseconds(25);
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  workload::Scenario scenario(cfg);
  auto& rutgers = scenario.add_server("rutgers", 1);
  auto& texas = scenario.add_server("texas", 2);

  app::AppConfig app_cfg;
  app_cfg.name = "res";
  app_cfg.acl = make_acl({{"alice", Privilege::steer},
                          {"carol", Privilege::steer}});
  app_cfg.step_time = util::milliseconds(1);
  app_cfg.update_every = 4;
  app_cfg.interact_every = 8;
  app_cfg.interaction_window = util::milliseconds(1);
  auto& app = scenario.add_app<app::ReservoirApp>(texas, app_cfg, 12, 12);
  app::AppConfig id_cfg = app_cfg;
  id_cfg.name = "id";
  scenario.add_app<app::SyntheticApp>(rutgers, id_cfg, app::SyntheticSpec{});
  scenario.run_until([&] {
    return app.registered() && rutgers.peer_count() == 1;
  });

  auto& alice = scenario.add_client("alice", rutgers);
  auto& carol = scenario.add_client("carol", texas);
  (void)workload::sync_onboard_steerer(scenario.net(), alice, app.app_id());
  (void)workload::sync_login(scenario.net(), carol);
  (void)workload::sync_select(scenario.net(), carol, app.app_id());
  (void)workload::sync_command(scenario.net(), alice, app.app_id(),
                               proto::CommandKind::set_param,
                               "injection_rate", proto::ParamValue{321.0});
  (void)workload::sync_collab_post(scenario.net(), carol, app.app_id(),
                                   proto::EventKind::chat, "hi");
  scenario.run_for(util::milliseconds(500));
  (void)workload::sync_poll(scenario.net(), alice, app.app_id());
  (void)workload::sync_poll(scenario.net(), carol, app.app_id());

  std::ostringstream fp;
  for (const auto* c : {&alice, &carol}) {
    fp << c->user() << ":";
    for (const auto& ev : c->received_events()) {
      fp << ev.seq << "/" << static_cast<int>(ev.kind) << "/" << ev.at
         << ",";
    }
    fp << ";";
  }
  for (const auto* s : {&rutgers, &texas}) {
    const auto& st = s->stats();
    fp << st.updates_processed << "|" << st.events_delivered << "|"
       << st.commands_accepted << "|" << st.peer_events_in << "|"
       << st.polls_served << ";";
  }
  const auto traffic = scenario.net().traffic();
  fp << traffic.messages << "/" << traffic.bytes << "/"
     << traffic.wan_messages << "/" << traffic.wan_bytes << ";";
  fp << app.injection_rate() << "/" << app.steps() << "/"
     << app.average_pressure();
  fp << "@" << scenario.net().now();
  return fp.str();
}

class DeterminismTest
    : public ::testing::TestWithParam<core::RemoteUpdateMode> {};

TEST_P(DeterminismTest, IdenticalRunsProduceIdenticalTraces) {
  const std::string run1 = run_and_fingerprint(GetParam());
  const std::string run2 = run_and_fingerprint(GetParam());
  const std::string run3 = run_and_fingerprint(GetParam());
  EXPECT_EQ(run1, run2);
  EXPECT_EQ(run2, run3);
  EXPECT_FALSE(run1.empty());
  // Sanity: the fingerprint actually contains event traffic.
  EXPECT_NE(run1.find(","), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, DeterminismTest,
    ::testing::Values(core::RemoteUpdateMode::push,
                      core::RemoteUpdateMode::poll),
    [](const ::testing::TestParamInfo<core::RemoteUpdateMode>& info) {
      return info.param == core::RemoteUpdateMode::push ? "push" : "poll";
    });

TEST(DeterminismTest, PushAndPollDeliverTheSameEvents) {
  // The two remote-update modes may interleave differently but must not
  // lose or duplicate events: compare the SET of (seq, kind) pairs seen by
  // the remote client... the traces include timing, so compare counts of
  // update events at steady state instead.
  const std::string push_fp = run_and_fingerprint(
      core::RemoteUpdateMode::push);
  const std::string poll_fp = run_and_fingerprint(
      core::RemoteUpdateMode::poll);
  // Not equal (different timing) but both non-trivial.
  EXPECT_FALSE(push_fp.empty());
  EXPECT_FALSE(poll_fp.empty());
}

}  // namespace
}  // namespace discover
