#include <gtest/gtest.h>

#include "core/session_archive.h"
#include "util/rng.h"

namespace discover::core {
namespace {

const proto::AppId kApp{2, 1};

proto::ClientEvent event(std::uint64_t seq, proto::EventKind kind,
                         const std::string& user = "",
                         const std::string& param = "",
                         proto::ParamValue value = {}) {
  proto::ClientEvent ev;
  ev.seq = seq;
  ev.kind = kind;
  ev.app = kApp;
  ev.user = user;
  ev.param = param;
  ev.value = std::move(value);
  return ev;
}

TEST(SessionArchiveTest, AppHistoryFiltersBySeq) {
  SessionArchive archive;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    archive.log_app_event(event(s, proto::EventKind::update), "owner");
  }
  EXPECT_EQ(archive.latest_seq(kApp), 10u);
  const auto all = archive.app_history(kApp, 0, 0);
  EXPECT_EQ(all.size(), 10u);
  const auto tail = archive.app_history(kApp, 7, 0);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].seq, 8u);
  const auto capped = archive.app_history(kApp, 0, 4);
  EXPECT_EQ(capped.size(), 4u);
}

TEST(SessionArchiveTest, RingCapDropsOldest) {
  SessionArchive archive(5);
  for (std::uint64_t s = 1; s <= 8; ++s) {
    archive.log_app_event(event(s, proto::EventKind::update), "owner");
  }
  const auto all = archive.app_history(kApp, 0, 0);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all.front().seq, 4u);
  EXPECT_EQ(all.back().seq, 8u);
}

TEST(SessionArchiveTest, InteractionLogPerUser) {
  SessionArchive archive;
  archive.log_interaction("alice", event(1, proto::EventKind::response,
                                         "alice"));
  archive.log_interaction("alice", event(2, proto::EventKind::response,
                                         "alice"));
  archive.log_interaction("bob", event(3, proto::EventKind::response, "bob"));
  EXPECT_EQ(archive.interactions("alice", kApp).size(), 2u);
  EXPECT_EQ(archive.interactions("bob", kApp).size(), 1u);
  EXPECT_EQ(archive.interactions("carol", kApp).size(), 0u);
  EXPECT_EQ(archive.interactions_logged(), 3u);
}

TEST(SessionArchiveTest, ReplayParamsReconstructsFinalState) {
  std::vector<proto::ClientEvent> events;
  events.push_back(event(1, proto::EventKind::response, "alice", "alpha",
                         proto::ParamValue{0.1}));
  events.push_back(event(2, proto::EventKind::update));
  events.push_back(event(3, proto::EventKind::response, "bob", "beta",
                         proto::ParamValue{2.0}));
  events.push_back(event(4, proto::EventKind::response, "alice", "alpha",
                         proto::ParamValue{0.3}));
  events.push_back(event(5, proto::EventKind::chat, "alice"));
  const auto params = SessionArchive::replay_params(events);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_DOUBLE_EQ(std::get<double>(params.at("alpha")), 0.3);
  EXPECT_DOUBLE_EQ(std::get<double>(params.at("beta")), 2.0);
}

TEST(SessionArchiveTest, DbMirrorAppliesOwnershipRules) {
  db::RecordStore store;
  SessionArchive archive(0, &store);
  // Periodic update: owned by the app owner.
  archive.log_app_event(event(1, proto::EventKind::update), "app-owner");
  // Response to alice's request: owned by alice (§6.3).
  archive.log_app_event(event(2, proto::EventKind::response, "alice"),
                        "app-owner");
  const db::Table* table = store.find_table("app_log_" + kApp.to_string());
  ASSERT_NE(table, nullptr);
  const auto rows = table->scan_all();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].owner, "app-owner");
  EXPECT_EQ(rows[1].owner, "alice");
}

TEST(SessionArchiveTest, DropAppClearsLog) {
  SessionArchive archive;
  archive.log_app_event(event(1, proto::EventKind::update), "o");
  archive.drop_app(kApp);
  EXPECT_EQ(archive.app_history(kApp, 0, 0).size(), 0u);
  EXPECT_EQ(archive.latest_seq(kApp), 0u);
}

/// Property: for any random event stream, a latecomer that fetches the full
/// history and then applies poll events from the cut point sees exactly the
/// same event sequence as a client present from the start.
class ArchiveCatchUpFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArchiveCatchUpFuzz, HistoryPlusTailEqualsFullStream) {
  util::Rng rng(GetParam());
  SessionArchive archive;
  std::vector<std::uint64_t> full;
  for (std::uint64_t s = 1; s <= 200; ++s) {
    archive.log_app_event(
        event(s, static_cast<proto::EventKind>(rng.below(7))), "o");
    full.push_back(s);
  }
  const std::uint64_t cut = rng.below(200);
  const auto head = archive.app_history(kApp, 0, static_cast<std::uint32_t>(cut));
  const std::uint64_t head_last = head.empty() ? 0 : head.back().seq;
  const auto tail = archive.app_history(kApp, head_last, 0);
  std::vector<std::uint64_t> stitched;
  for (const auto& e : head) stitched.push_back(e.seq);
  for (const auto& e : tail) stitched.push_back(e.seq);
  EXPECT_EQ(stitched, full);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchiveCatchUpFuzz,
                         ::testing::Values(2, 4, 6, 8));

}  // namespace
}  // namespace discover::core
