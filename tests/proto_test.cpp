#include <gtest/gtest.h>

#include "proto/messages.h"
#include "util/rng.h"

namespace discover::proto {
namespace {

TEST(AppIdTest, StringRoundTripAndHostExtraction) {
  AppId id;
  id.host = 17;
  id.local = 3;
  EXPECT_EQ(id.to_string(), "17:3");
  EXPECT_EQ(AppId::parse("17:3"), id);
  // §5.2.1: "the server's IP address can be extracted from this application
  // identifier".
  EXPECT_EQ(id.host_server(), net::NodeId{17});
  EXPECT_EQ(AppId::parse("garbage"), AppId{});
}

TEST(ParamValueTest, AllAlternativesRoundTrip) {
  for (const ParamValue& v :
       {ParamValue{true}, ParamValue{std::int64_t{-9}}, ParamValue{2.75},
        ParamValue{std::string("text")}}) {
    wire::Encoder e;
    encode(e, v);
    wire::Decoder d(e.data());
    EXPECT_EQ(decode_param_value(d), v);
  }
  EXPECT_EQ(param_value_to_string(ParamValue{true}), "true");
  EXPECT_EQ(param_value_to_string(ParamValue{std::int64_t{4}}), "4");
  EXPECT_EQ(param_value_to_string(ParamValue{std::string("x")}), "x");
}

TEST(RequiredPrivilegeTest, MapsCommandsSensibly) {
  EXPECT_EQ(required_privilege(CommandKind::get_param),
            security::Privilege::read_only);
  EXPECT_EQ(required_privilege(CommandKind::query_status),
            security::Privilege::read_only);
  EXPECT_EQ(required_privilege(CommandKind::set_param),
            security::Privilege::read_write);
  EXPECT_EQ(required_privilege(CommandKind::acquire_lock),
            security::Privilege::read_write);
  EXPECT_EQ(required_privilege(CommandKind::stop_app),
            security::Privilege::steer);
  EXPECT_EQ(required_privilege(CommandKind::checkpoint),
            security::Privilege::steer);
}

ClientEvent random_event(util::Rng& rng) {
  ClientEvent ev;
  ev.kind = static_cast<EventKind>(rng.below(7));
  ev.seq = rng.next();
  ev.app.host = static_cast<std::uint32_t>(rng.below(100));
  ev.app.local = static_cast<std::uint32_t>(rng.below(100));
  ev.at = static_cast<util::TimePoint>(rng.below(1'000'000'000));
  ev.user = "user" + std::to_string(rng.below(10));
  ev.text = std::string(rng.below(40), 'x');
  ev.request_id = rng.next();
  ev.param = "param" + std::to_string(rng.below(5));
  ev.value = ParamValue{rng.uniform() * 100};
  for (std::uint64_t i = 0; i < rng.below(5); ++i) {
    ev.metrics["m" + std::to_string(i)] = rng.uniform();
  }
  ev.iteration = rng.next();
  ev.subgroup = rng.chance(0.5) ? "" : "sub";
  ev.shared = rng.chance(0.8);
  return ev;
}

class EventFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventFuzzTest, ClientEventRoundTrips) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const ClientEvent ev = random_event(rng);
    wire::Encoder e;
    encode(e, ev);
    wire::Decoder d(e.data());
    EXPECT_EQ(decode_client_event(d), ev);
    d.finish();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventFuzzTest,
                         ::testing::Values(7, 11, 13, 17, 19));

TEST(FramedTest, EveryVariantRoundTrips) {
  AppRegister reg;
  reg.app_name = "heat";
  reg.description = "desc";
  reg.auth_key = 7;
  reg.params = {ParamSpec{"alpha", ParamValue{0.1}, 0, 1, true, "1"}};
  reg.acl = {{"alice", security::Privilege::steer, 5}};
  reg.update_period = util::milliseconds(5);

  AppRegisterAck ack;
  ack.accepted = true;
  ack.message = "ok";
  ack.app_id = {1, 2};

  AppUpdate update;
  update.app_id = {1, 2};
  update.iteration = 10;
  update.sim_time = 1.5;
  update.phase = AppPhase::interacting;
  update.metrics = {{"t", 3.0}};

  AppPhaseNotice phase;
  phase.app_id = {1, 2};
  phase.phase = AppPhase::finished;

  AppDeregister dereg;
  dereg.app_id = {1, 2};
  dereg.reason = "done";

  AppCommand cmd;
  cmd.app_id = {1, 2};
  cmd.request_id = 42;
  cmd.user = "alice";
  cmd.kind = CommandKind::set_param;
  cmd.param = "alpha";
  cmd.value = ParamValue{0.2};

  AppResponse resp;
  resp.app_id = {1, 2};
  resp.request_id = 42;
  resp.ok = true;
  resp.message = "done";
  resp.param = "alpha";
  resp.value = ParamValue{0.2};
  resp.params = reg.params;

  AppError err;
  err.app_id = {1, 2};
  err.request_id = 9;
  err.message = "boom";

  SystemEvent sys;
  sys.kind = SystemEventKind::app_registered;
  sys.origin_server = 3;
  sys.app = {1, 2};
  sys.text = "hello";

  const std::vector<FramedMessage> all{reg, ack, update, phase, dereg,
                                       cmd, resp, err, sys};
  for (const auto& msg : all) {
    auto decoded = decode_framed(encode_framed(msg));
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(decoded.value().index(), msg.index());
  }

  // Spot-check deep equality on a couple of variants.
  const auto reg2 =
      std::get<AppRegister>(decode_framed(encode_framed(reg)).value());
  EXPECT_EQ(reg2.app_name, reg.app_name);
  EXPECT_EQ(reg2.params, reg.params);
  EXPECT_EQ(reg2.acl, reg.acl);
  const auto resp2 =
      std::get<AppResponse>(decode_framed(encode_framed(resp)).value());
  EXPECT_EQ(resp2.value, resp.value);
  EXPECT_EQ(resp2.params, resp.params);
}

TEST(FramedTest, MalformedFramesRejectedGracefully) {
  EXPECT_FALSE(decode_framed({}).ok());
  EXPECT_FALSE(decode_framed({0xFF, 0x01}).ok());
  util::Bytes truncated = encode_framed(FramedMessage{AppUpdate{}});
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(decode_framed(truncated).ok());
  // Trailing garbage also rejected.
  util::Bytes padded = encode_framed(FramedMessage{AppPhaseNotice{}});
  padded.push_back(0);
  padded.push_back(1);
  padded.push_back(2);
  EXPECT_FALSE(decode_framed(padded).ok());
}

TEST(HttpBodyTest, LoginRoundTrip) {
  LoginRequest req;
  req.user = "alice";
  req.password_digest = 99;
  const auto req2 = decode_login_request(encode_body(req));
  EXPECT_EQ(req2.user, "alice");
  EXPECT_EQ(req2.password_digest, 99u);

  LoginReply reply;
  reply.ok = true;
  reply.message = "hi";
  reply.token.user = "alice";
  reply.token.issuer = 4;
  reply.token.mac = 123;
  reply.applications = {AppInfo{{1, 2}, "app", "d",
                                security::Privilege::steer,
                                AppPhase::computing, 7}};
  const auto reply2 = decode_login_reply(encode_body(reply));
  EXPECT_EQ(reply2.token, reply.token);
  EXPECT_EQ(reply2.applications, reply.applications);
}

TEST(HttpBodyTest, CommandAndPollRoundTrip) {
  CommandRequest cmd;
  cmd.token.user = "u";
  cmd.app_id = {5, 6};
  cmd.request_id = 8;
  cmd.kind = CommandKind::acquire_lock;
  cmd.param = "p";
  cmd.value = ParamValue{std::int64_t{3}};
  const auto cmd2 = decode_command_request(encode_body(cmd));
  EXPECT_EQ(cmd2.kind, CommandKind::acquire_lock);
  EXPECT_EQ(cmd2.value, cmd.value);

  PollReply poll;
  poll.ok = true;
  poll.backlog = 12;
  ClientEvent ev;
  ev.kind = EventKind::chat;
  ev.text = "hello";
  poll.events.push_back(ev);
  const auto poll2 = decode_poll_reply(encode_body(poll));
  EXPECT_EQ(poll2.backlog, 12u);
  ASSERT_EQ(poll2.events.size(), 1u);
  EXPECT_EQ(poll2.events[0].text, "hello");
}

TEST(HttpBodyTest, GroupAndHistoryRoundTrip) {
  GroupRequest g;
  g.app_id = {1, 1};
  g.op = GroupOp::disable_collab;
  g.subgroup = "team-a";
  const auto g2 = decode_group_request(encode_body(g));
  EXPECT_EQ(g2.op, GroupOp::disable_collab);
  EXPECT_EQ(g2.subgroup, "team-a");

  HistoryRequest h;
  h.app_id = {1, 1};
  h.from_seq = 5;
  h.max_events = 10;
  const auto h2 = decode_history_request(encode_body(h));
  EXPECT_EQ(h2.from_seq, 5u);
  EXPECT_EQ(h2.max_events, 10u);
}

TEST(NamesTest, EnumNamesAreStable) {
  EXPECT_STREQ(phase_name(AppPhase::interacting), "interacting");
  EXPECT_STREQ(command_name(CommandKind::acquire_lock), "acquire_lock");
  EXPECT_STREQ(event_kind_name(EventKind::lock_notice), "lock_notice");
}

}  // namespace
}  // namespace discover::proto
