// Collaboration-handler semantics (paper §4.1): default group, sub-groups,
// disabling collaboration, response broadcast, slow-client FIFO behaviour.
#include <gtest/gtest.h>

#include "app/synthetic.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;
using workload::make_acl;

class CollabTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = &scenario_.add_server("hub", 1);
    app::AppConfig cfg;
    cfg.name = "shared-sim";
    cfg.acl = make_acl({{"alice", Privilege::steer},
                        {"bob", Privilege::read_write},
                        {"carol", Privilege::read_only},
                        {"dave", Privilege::read_only}});
    cfg.step_time = util::milliseconds(1);
    cfg.update_every = 0;  // quiet: only explicit events in these tests
    cfg.interact_every = 4;
    cfg.interaction_window = util::milliseconds(1);
    app_ = &scenario_.add_app<app::SyntheticApp>(*server_, cfg,
                                                 app::SyntheticSpec{});
    ASSERT_TRUE(scenario_.run_until([&] { return app_->registered(); }));
    app_id_ = app_->app_id();
  }

  core::DiscoverClient& join(const std::string& user) {
    auto& c = scenario_.add_client(user, *server_);
    EXPECT_TRUE(workload::sync_login(scenario_.net(), c).value().ok);
    EXPECT_TRUE(
        workload::sync_select(scenario_.net(), c, app_id_).value().ok);
    return c;
  }

  void drain(core::DiscoverClient& c) {
    (void)workload::sync_poll(scenario_.net(), c, app_id_);
  }

  std::uint64_t chats_seen(core::DiscoverClient& c, const std::string& text) {
    std::uint64_t n = 0;
    for (const auto& ev : c.received_events()) {
      if (ev.kind == proto::EventKind::chat && ev.text == text) ++n;
    }
    return n;
  }

  workload::Scenario scenario_;
  core::DiscoverServer* server_ = nullptr;
  app::SyntheticApp* app_ = nullptr;
  proto::AppId app_id_;
};

TEST_F(CollabTest, DefaultGroupReceivesChatExactlyOnce) {
  auto& alice = join("alice");
  auto& bob = join("bob");
  auto& carol = join("carol");
  ASSERT_TRUE(workload::sync_collab_post(scenario_.net(), alice, app_id_,
                                         proto::EventKind::chat, "m1")
                  .value().ok);
  scenario_.run_for(util::milliseconds(5));
  for (auto* c : {&alice, &bob, &carol}) drain(*c);
  EXPECT_EQ(chats_seen(alice, "m1"), 1u);  // own echo
  EXPECT_EQ(chats_seen(bob, "m1"), 1u);
  EXPECT_EQ(chats_seen(carol, "m1"), 1u);
}

TEST_F(CollabTest, SubgroupScopesChat) {
  auto& alice = join("alice");
  auto& bob = join("bob");
  auto& carol = join("carol");
  // Alice and bob join sub-group "team"; carol stays in the main group.
  ASSERT_TRUE(workload::sync_group_op(scenario_.net(), alice, app_id_,
                                      proto::GroupOp::join_subgroup, "team")
                  .value().ok);
  ASSERT_TRUE(workload::sync_group_op(scenario_.net(), bob, app_id_,
                                      proto::GroupOp::join_subgroup, "team")
                  .value().ok);
  ASSERT_TRUE(workload::sync_collab_post(scenario_.net(), alice, app_id_,
                                         proto::EventKind::chat, "secret")
                  .value().ok);
  scenario_.run_for(util::milliseconds(5));
  for (auto* c : {&alice, &bob, &carol}) drain(*c);
  EXPECT_EQ(chats_seen(bob, "secret"), 1u);
  EXPECT_EQ(chats_seen(carol, "secret"), 0u);  // never leaks outside

  // After leaving, bob no longer receives team chat.
  ASSERT_TRUE(workload::sync_group_op(scenario_.net(), bob, app_id_,
                                      proto::GroupOp::leave_subgroup, "")
                  .value().ok);
  ASSERT_TRUE(workload::sync_collab_post(scenario_.net(), alice, app_id_,
                                         proto::EventKind::chat, "secret2")
                  .value().ok);
  scenario_.run_for(util::milliseconds(5));
  for (auto* c : {&alice, &bob}) drain(*c);
  EXPECT_EQ(chats_seen(bob, "secret2"), 0u);
}

TEST_F(CollabTest, DisabledCollaborationIsPrivateBothWays) {
  auto& alice = join("alice");
  auto& bob = join("bob");
  ASSERT_TRUE(workload::sync_group_op(scenario_.net(), alice, app_id_,
                                      proto::GroupOp::disable_collab, "")
                  .value().ok);
  // Alice's chat is not broadcast (paper §4.1: "clients can also disable
  // all collaboration so that their requests/responses are not broadcast").
  ASSERT_TRUE(workload::sync_collab_post(scenario_.net(), alice, app_id_,
                                         proto::EventKind::chat, "quiet")
                  .value().ok);
  // And bob's chat does not reach alice while she opted out.
  ASSERT_TRUE(workload::sync_collab_post(scenario_.net(), bob, app_id_,
                                         proto::EventKind::chat, "loud")
                  .value().ok);
  scenario_.run_for(util::milliseconds(5));
  drain(alice);
  drain(bob);
  EXPECT_EQ(chats_seen(bob, "quiet"), 0u);
  EXPECT_EQ(chats_seen(alice, "quiet"), 1u);  // own echo still delivered
  EXPECT_EQ(chats_seen(alice, "loud"), 0u);
  // Re-enable: traffic flows again.
  ASSERT_TRUE(workload::sync_group_op(scenario_.net(), alice, app_id_,
                                      proto::GroupOp::enable_collab, "")
                  .value().ok);
  ASSERT_TRUE(workload::sync_collab_post(scenario_.net(), bob, app_id_,
                                         proto::EventKind::chat, "loud2")
                  .value().ok);
  scenario_.run_for(util::milliseconds(5));
  drain(alice);
  EXPECT_EQ(chats_seen(alice, "loud2"), 1u);
}

TEST_F(CollabTest, ResponsesAreSharedWithGroupUnlessDisabled) {
  auto& alice = join("alice");
  auto& carol = join("carol");
  ASSERT_TRUE(
      workload::sync_onboard_steerer(scenario_.net(), alice, app_id_));
  ASSERT_TRUE(workload::sync_command(scenario_.net(), alice, app_id_,
                                     proto::CommandKind::set_param, "param_0",
                                     proto::ParamValue{5.0})
                  .value().accepted);
  scenario_.run_for(util::milliseconds(30));
  drain(carol);
  // Carol sees alice's steering response (shared view).
  std::uint64_t carol_responses =
      carol.events_of_kind(proto::EventKind::response);
  EXPECT_GE(carol_responses, 1u);

  // With collaboration disabled, alice's next response stays private.
  ASSERT_TRUE(workload::sync_group_op(scenario_.net(), alice, app_id_,
                                      proto::GroupOp::disable_collab, "")
                  .value().ok);
  ASSERT_TRUE(workload::sync_command(scenario_.net(), alice, app_id_,
                                     proto::CommandKind::set_param, "param_0",
                                     proto::ParamValue{6.0})
                  .value().accepted);
  scenario_.run_for(util::milliseconds(30));
  drain(carol);
  drain(alice);
  EXPECT_EQ(carol.events_of_kind(proto::EventKind::response),
            carol_responses);  // unchanged
  EXPECT_GE(alice.events_of_kind(proto::EventKind::response), 2u);
}

TEST_F(CollabTest, SlowClientFifoDropsOldestAndCountsIt) {
  core::ServerConfig tiny = server_->config();
  // Build a second server with a tiny FIFO to exercise the cap.
  tiny.name = "tinyfifo";
  tiny.client_fifo_cap = 4;
  auto& small = scenario_.add_server("tinyfifo", 1, tiny);
  app::AppConfig cfg;
  cfg.name = "chatty";
  cfg.acl = make_acl({{"dave", Privilege::read_only}});
  cfg.step_time = util::milliseconds(1);
  cfg.update_every = 1;  // very chatty
  cfg.interact_every = 0;
  auto& chatty = scenario_.add_app<app::SyntheticApp>(small, cfg,
                                                      app::SyntheticSpec{});
  ASSERT_TRUE(scenario_.run_until([&] { return chatty.registered(); }));

  auto& dave = scenario_.add_client("dave", small);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), dave).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario_.net(), dave, chatty.app_id())
                  .value().ok);
  // Never poll while 50 updates arrive: only 4 survive, and the overflow is
  // explicit — the next poll leads with a resync marker carrying the count
  // of shed events before the surviving (most recent) ones.
  scenario_.run_for(util::milliseconds(60));
  auto poll = workload::sync_poll(scenario_.net(), dave, chatty.app_id());
  ASSERT_TRUE(poll.ok());
  ASSERT_FALSE(poll.value().events.empty());
  EXPECT_EQ(poll.value().events.front().kind, proto::EventKind::resync);
  EXPECT_EQ(poll.value().events.front().value,
            proto::ParamValue{static_cast<std::int64_t>(
                small.stats().events_dropped)});
  EXPECT_LE(poll.value().events.size(), 5u);  // marker + cap survivors
  EXPECT_GT(small.stats().events_dropped, 0u);
  EXPECT_GT(small.stats().resync_markers, 0u);
  // Delivered events are the most recent ones (oldest shed).
  EXPECT_GT(poll.value().events.back().seq, 4u);
}

TEST_F(CollabTest, LockNoticesReachWholeGroup) {
  auto& alice = join("alice");
  auto& carol = join("carol");
  ASSERT_TRUE(
      workload::sync_onboard_steerer(scenario_.net(), alice, app_id_));
  scenario_.run_for(util::milliseconds(5));
  drain(carol);
  EXPECT_GE(carol.events_of_kind(proto::EventKind::lock_notice), 1u);
}

TEST_F(CollabTest, LogoutReleasesHeldLock) {
  auto& alice = join("alice");
  ASSERT_TRUE(
      workload::sync_onboard_steerer(scenario_.net(), alice, app_id_));
  ASSERT_TRUE(server_->lock_holder(app_id_).has_value());
  // Logout must forget alice's lock interest (paper §5.2.4 relay rules).
  bool done = false;
  scenario_.net().post(alice.node(), [&] {
    alice.logout([&](util::Result<proto::CollabAck> r) {
      done = r.ok() && r.value().ok;
    });
  });
  ASSERT_TRUE(workload::wait_for(scenario_.net(), [&] { return done; }));
  ASSERT_TRUE(scenario_.run_until(
      [&] { return !server_->lock_holder(app_id_).has_value(); }));
}

}  // namespace
}  // namespace discover
