// Deterministic chaos suite: seeded message loss, duplication, jitter,
// partitions and node crashes injected under the virtual clock, with the
// retry/backoff + dedup + peer-health machinery riding through them.
// Every scenario is run twice from the same fault seed and must produce a
// byte-identical network event trace (the determinism oracle).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include <future>
#include <vector>

#include "app/synthetic.h"
#include "net/thread_network.h"
#include "orb/orb.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"
#include "workload/thread_scenario.h"

namespace discover {
namespace {

using security::Privilege;
using workload::make_acl;

app::AppConfig chaos_app(const std::string& name) {
  app::AppConfig cfg;
  cfg.name = name;
  cfg.acl = make_acl({{"alice", Privilege::steer},
                      {"bob", Privilege::read_only}});
  // Keep the background update stream sparse so traces stay small.
  cfg.step_time = util::milliseconds(5);
  cfg.update_every = 100;
  cfg.interact_every = 0;
  return cfg;
}

// ---------------------------------------------------------------------------
// (a) Steering through a lossy WAN + a mid-run partition: zero lost commands.
// ---------------------------------------------------------------------------

struct LossyRunResult {
  int accepted = 0;
  net::FaultStats stats{};
  std::string trace;
};

LossyRunResult run_lossy_wan(std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.fault_seed = seed;
  cfg.wan_faults.drop_prob = 0.08;
  cfg.wan_faults.duplicate_prob = 0.03;
  cfg.wan_faults.jitter_max = util::milliseconds(2);
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  cfg.server_template.orb_call_timeout = util::milliseconds(500);
  cfg.server_template.peer_suspect_threshold = 0;  // isolate retry behaviour
  cfg.server_template.orb_retry.max_attempts = 6;
  cfg.server_template.orb_retry.initial_backoff = util::milliseconds(100);
  cfg.server_template.orb_retry.max_backoff = util::seconds(1);
  workload::Scenario scenario(cfg);

  auto& near = scenario.add_server("near", 1);
  auto& host = scenario.add_server("host", 2);
  auto& app = scenario.add_app<app::SyntheticApp>(host, chaos_app("far"),
                                                  app::SyntheticSpec{});
  scenario.add_app<app::SyntheticApp>(near, chaos_app("near-id"),
                                      app::SyntheticSpec{});
  EXPECT_TRUE(scenario.run_until([&] {
    return app.registered() && near.peer_count() == 1 &&
           host.peer_count() == 1;
  }));

  scenario.net().set_trace_enabled(true);

  core::ClientConfig ccfg;
  ccfg.request_timeout = util::seconds(8);
  ccfg.request_retry.max_attempts = 4;
  ccfg.request_retry.initial_backoff = util::milliseconds(250);
  ccfg.request_retry.max_backoff = util::seconds(2);
  auto& alice = scenario.add_client("alice", near, ccfg);
  EXPECT_TRUE(
      workload::sync_onboard_steerer(scenario.net(), alice, app.app_id()));

  LossyRunResult out;
  for (int i = 0; i < 20; ++i) {
    if (i == 10) {
      // 2 s blackout between the client's server and the app's host,
      // healed by a timer while command #10's retries are backing off.
      scenario.partition(near, host);
      scenario.net().schedule(host.node(), util::seconds(2),
                              [&] { scenario.heal(near, host); });
    }
    auto ack = workload::sync_command(
        scenario.net(), alice, app.app_id(), proto::CommandKind::set_param,
        "param_0", proto::ParamValue{static_cast<double>(i)},
        util::seconds(60));
    if (ack.ok() && ack.value().accepted) ++out.accepted;
  }

  out.stats = scenario.net().fault_stats();
  out.trace = scenario.net().trace();
  return out;
}

TEST(ChaosTest, LossyWanLosesNoSteerCommands) {
  const LossyRunResult run = run_lossy_wan(0xC0FFEE);
  EXPECT_EQ(run.accepted, 20);
  // The run actually went through adversity: losses, duplicates, and the
  // partition all fired.
  EXPECT_GT(run.stats.dropped, 0u);
  EXPECT_GT(run.stats.duplicated, 0u);
  EXPECT_GT(run.stats.partition_drops, 0u);
  EXPECT_FALSE(run.trace.empty());
}

TEST(ChaosTest, LossyWanRunsAreByteIdenticalPerSeed) {
  const LossyRunResult a = run_lossy_wan(0xC0FFEE);
  const LossyRunResult b = run_lossy_wan(0xC0FFEE);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.stats.dropped, b.stats.dropped);
  EXPECT_EQ(a.stats.duplicated, b.stats.duplicated);
  EXPECT_EQ(a.trace, b.trace);

  // A different seed steers the fault RNG down a different path.
  const LossyRunResult c = run_lossy_wan(0xBEEF);
  EXPECT_EQ(c.accepted, 20);  // retries still save every command
  EXPECT_NE(a.trace, c.trace);
}

// ---------------------------------------------------------------------------
// (a2) Batched server-to-server push through the same lossy WAN: the outbox
// keeps one batch in flight and the ORB retries it with a stable request id,
// so drops, duplicates, jitter and a mid-run blackout must not reorder,
// duplicate or lose pushed events.
// ---------------------------------------------------------------------------

struct BatchedPushRunResult {
  std::vector<proto::ClientEvent> watcher_events;
  core::ServerStats host_stats{};
  net::FaultStats stats{};
  std::string trace;
};

BatchedPushRunResult run_batched_push(std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.fault_seed = seed;
  cfg.wan_faults.drop_prob = 0.08;
  cfg.wan_faults.duplicate_prob = 0.03;
  cfg.wan_faults.jitter_max = util::milliseconds(2);
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  cfg.server_template.orb_call_timeout = util::milliseconds(500);
  cfg.server_template.peer_suspect_threshold = 0;  // ride it out with retries
  cfg.server_template.orb_retry.max_attempts = 6;
  cfg.server_template.orb_retry.initial_backoff = util::milliseconds(100);
  cfg.server_template.orb_retry.max_backoff = util::seconds(1);
  workload::Scenario scenario(cfg);

  auto& near = scenario.add_server("near", 1);
  auto& host = scenario.add_server("host", 2);
  app::AppConfig watched = chaos_app("far");
  watched.update_every = 25;  // an update every 125 ms: a real push stream
  auto& app = scenario.add_app<app::SyntheticApp>(host, watched,
                                                  app::SyntheticSpec{});
  scenario.add_app<app::SyntheticApp>(near, chaos_app("near-id"),
                                      app::SyntheticSpec{});
  EXPECT_TRUE(scenario.run_until([&] {
    return app.registered() && near.peer_count() == 1 &&
           host.peer_count() == 1;
  }));

  scenario.net().set_trace_enabled(true);

  // The watcher observes the host's app across the WAN; the chatter posts
  // at the host itself, so its chats travel only the batched push path.
  auto& alice = scenario.add_client("alice", near);
  EXPECT_TRUE(workload::sync_login(scenario.net(), alice).value().ok);
  EXPECT_TRUE(
      workload::sync_select(scenario.net(), alice, app.app_id()).value().ok);
  EXPECT_TRUE(workload::sync_group_op(scenario.net(), alice, app.app_id(),
                                      proto::GroupOp::enable_push, "")
                  .value()
                  .ok);
  auto& chatter = scenario.add_client("bob", host);
  EXPECT_TRUE(workload::sync_login(scenario.net(), chatter).value().ok);
  EXPECT_TRUE(
      workload::sync_select(scenario.net(), chatter, app.app_id()).value().ok);

  for (int i = 0; i < 10; ++i) {
    if (i == 4) {
      // 2 s blackout; pushed items requeue in the host's outbox and drain
      // after the heal.
      scenario.partition(near, host);
      scenario.net().schedule(host.node(), util::seconds(2),
                              [&] { scenario.heal(near, host); });
    }
    (void)workload::sync_collab_post(scenario.net(), chatter, app.app_id(),
                                     proto::EventKind::chat,
                                     "c" + std::to_string(i),
                                     util::seconds(60));
    scenario.run_for(util::milliseconds(150));
  }
  // Drain: a batch that straddles the blackout can spend several seconds in
  // ORB retries before the requeued tail goes out again, so wait for the
  // last chat (bounded) instead of sleeping a fixed amount.
  EXPECT_TRUE(scenario.run_until(
      [&] {
        std::size_t chats = 0;
        for (const auto& ev : alice.received_events()) {
          if (ev.kind == proto::EventKind::chat) ++chats;
        }
        return chats >= 10;
      },
      util::seconds(60)));
  scenario.run_for(util::seconds(1));

  BatchedPushRunResult out;
  for (const auto& ev : alice.received_events()) {
    if (ev.app == app.app_id()) out.watcher_events.push_back(ev);
  }
  out.host_stats = host.stats();
  out.stats = scenario.net().fault_stats();
  out.trace = scenario.net().trace();
  return out;
}

TEST(ChaosTest, BatchedPushSurvivesLossyWanExactlyOnceInOrder) {
  const BatchedPushRunResult run = run_batched_push(0xFEED);
  // The run went through real adversity and real batching.
  EXPECT_GT(run.stats.dropped, 0u);
  EXPECT_GT(run.stats.duplicated, 0u);
  EXPECT_GT(run.stats.partition_drops, 0u);
  EXPECT_GT(run.host_stats.peer_batches_out, 0u);

  // Exactly-once, in order: host-assigned sequences strictly increase in
  // arrival order across every event kind.
  ASSERT_FALSE(run.watcher_events.empty());
  for (std::size_t i = 1; i < run.watcher_events.size(); ++i) {
    EXPECT_LT(run.watcher_events[i - 1].seq, run.watcher_events[i].seq)
        << "duplicate or reordered event at index " << i;
  }
  // Every chat arrived exactly once, in posting order — including the ones
  // posted into the blackout, which waited in the outbox.
  std::vector<std::string> chats;
  for (const auto& ev : run.watcher_events) {
    if (ev.kind == proto::EventKind::chat) chats.push_back(ev.text);
  }
  const std::vector<std::string> want = {"c0", "c1", "c2", "c3", "c4",
                                         "c5", "c6", "c7", "c8", "c9"};
  EXPECT_EQ(chats, want);
}

TEST(ChaosTest, BatchedPushRunsAreByteIdenticalPerSeed) {
  const BatchedPushRunResult a = run_batched_push(0xFEED);
  const BatchedPushRunResult b = run_batched_push(0xFEED);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_FALSE(a.trace.empty());

  const BatchedPushRunResult c = run_batched_push(0xD1CE);
  EXPECT_NE(a.trace, c.trace);
}

// ---------------------------------------------------------------------------
// (b)+(c) Partition -> peer suspect + directory withdrawal; heal -> restore.
// ---------------------------------------------------------------------------

struct PartitionRunResult {
  bool suspect_after_partition = false;
  bool select_rejected_while_suspect = false;
  bool healed = false;
  bool select_ok_after_heal = false;
  bool command_ok_after_heal = false;
  std::string trace;
};

PartitionRunResult run_partition_cycle(std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.fault_seed = seed;
  cfg.server_template.peer_refresh_period = util::milliseconds(200);
  cfg.server_template.orb_call_timeout = util::milliseconds(300);
  cfg.server_template.peer_suspect_threshold = 3;
  // Poll mode: the subscriber's periodic poll_events calls are the failure
  // detector's heartbeat during the partition.
  cfg.server_template.remote_update_mode = core::RemoteUpdateMode::poll;
  cfg.server_template.remote_poll_period = util::milliseconds(100);
  workload::Scenario scenario(cfg);

  auto& near = scenario.add_server("near", 1);
  auto& host = scenario.add_server("host", 2);
  auto& app = scenario.add_app<app::SyntheticApp>(host, chaos_app("far"),
                                                  app::SyntheticSpec{});
  scenario.add_app<app::SyntheticApp>(near, chaos_app("near-id"),
                                      app::SyntheticSpec{});
  EXPECT_TRUE(scenario.run_until([&] {
    return app.registered() && near.peer_count() == 1 &&
           host.peer_count() == 1;
  }));

  scenario.net().set_trace_enabled(true);

  auto& alice = scenario.add_client("alice", near);
  EXPECT_TRUE(workload::sync_login(scenario.net(), alice).value().ok);
  EXPECT_TRUE(workload::sync_select(scenario.net(), alice, app.app_id())
                  .value().ok);

  PartitionRunResult out;
  scenario.partition(near, host);
  out.suspect_after_partition = scenario.run_until(
      [&] { return near.peer_suspect(host.node()); }, util::seconds(30));

  // While suspect, the remote app is gone from near's directory: a fresh
  // select fast-fails instead of hanging on a dead peer.
  auto sel = workload::sync_select(scenario.net(), alice, app.app_id());
  out.select_rejected_while_suspect = sel.ok() && !sel.value().ok;

  scenario.heal(near, host);
  out.healed = scenario.run_until(
      [&] { return !near.peer_suspect(host.node()); }, util::seconds(30));

  auto sel2 = workload::sync_select(scenario.net(), alice, app.app_id());
  out.select_ok_after_heal = sel2.ok() && sel2.value().ok;
  auto ack = workload::sync_command(scenario.net(), alice, app.app_id(),
                                    proto::CommandKind::get_param, "param_0");
  out.command_ok_after_heal = ack.ok() && ack.value().accepted;

  out.trace = scenario.net().trace();
  return out;
}

TEST(ChaosTest, PartitionSuspectsPeerAndHealRestoresAccess) {
  const PartitionRunResult run = run_partition_cycle(0x5eed);
  EXPECT_TRUE(run.suspect_after_partition);
  EXPECT_TRUE(run.select_rejected_while_suspect);
  EXPECT_TRUE(run.healed);
  EXPECT_TRUE(run.select_ok_after_heal);
  EXPECT_TRUE(run.command_ok_after_heal);
}

TEST(ChaosTest, PartitionCycleRunsAreByteIdenticalPerSeed) {
  const PartitionRunResult a = run_partition_cycle(0x5eed);
  const PartitionRunResult b = run_partition_cycle(0x5eed);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_FALSE(a.trace.empty());
}

// ---------------------------------------------------------------------------
// Whole-node crash: the host vanishes (messages AND timers die), the peer
// detects it, and a restart lets probes through again.
// ---------------------------------------------------------------------------

TEST(ChaosTest, CrashedHostGoesSuspectRestartHeals) {
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(200);
  cfg.server_template.orb_call_timeout = util::milliseconds(300);
  cfg.server_template.peer_suspect_threshold = 3;
  cfg.server_template.remote_update_mode = core::RemoteUpdateMode::poll;
  cfg.server_template.remote_poll_period = util::milliseconds(100);
  workload::Scenario scenario(cfg);

  auto& near = scenario.add_server("near", 1);
  auto& host = scenario.add_server("host", 2);
  auto& app = scenario.add_app<app::SyntheticApp>(host, chaos_app("far"),
                                                  app::SyntheticSpec{});
  scenario.add_app<app::SyntheticApp>(near, chaos_app("near-id"),
                                      app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] {
    return app.registered() && near.peer_count() == 1;
  }));

  auto& alice = scenario.add_client("alice", near);
  ASSERT_TRUE(workload::sync_login(scenario.net(), alice).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario.net(), alice, app.app_id())
                  .value().ok);

  scenario.net().crash_node(host.node());
  ASSERT_TRUE(scenario.run_until(
      [&] { return near.peer_suspect(host.node()); }, util::seconds(30)));
  EXPECT_GT(scenario.net().fault_stats().crash_drops, 0u);

  // Restart re-opens the node: the host object's ORB answers probes again
  // (its own periodic timers died with the crash, but liveness is judged
  // by the ping reply alone).
  scenario.net().restart_node(host.node());
  EXPECT_TRUE(scenario.run_until(
      [&] { return !near.peer_suspect(host.node()); }, util::seconds(30)));
}

// ---------------------------------------------------------------------------
// Steering-lock lifecycle under a peer crash: alice steers the host's app
// from the near server and dave queues behind her there; then the near
// server crashes mid-steer.  The host's failure detector marks it suspect
// and reaps the lock: alice (holder) is evicted, dave (waiter with a dead
// origin) is purged without EVER being granted, and carol — a surviving
// waiter at the host itself — acquires well before the 30 s lease backstop
// would have fired.  (DESIGN.md "Steering-lock lifecycle".)
// ---------------------------------------------------------------------------

struct LockCrashRunResult {
  bool carol_acquired = false;
  util::Duration reacquire_delay = 0;   // crash -> carol holds (virtual time)
  std::vector<std::string> holders;     // distinct holder states observed
  bool dave_ever_held = false;
  core::ServerStats host_stats{};
  std::string trace;
};

LockCrashRunResult run_lock_holder_crash(std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.fault_seed = seed;
  cfg.server_template.peer_refresh_period = util::milliseconds(200);
  cfg.server_template.orb_call_timeout = util::milliseconds(300);
  cfg.server_template.peer_suspect_threshold = 3;
  cfg.server_template.remote_update_mode = core::RemoteUpdateMode::poll;
  cfg.server_template.remote_poll_period = util::milliseconds(100);
  // The lease is deliberately far longer than suspect detection: only
  // peer-crash reaping can free the lock this fast.
  cfg.server_template.lock_lease = util::seconds(30);
  workload::Scenario scenario(cfg);

  auto& near = scenario.add_server("near", 1);
  auto& host = scenario.add_server("host", 2);
  const auto steer_acl = make_acl({{"alice", Privilege::steer},
                                   {"dave", Privilege::steer},
                                   {"carol", Privilege::steer}});
  app::AppConfig acfg = chaos_app("far");
  acfg.acl = steer_acl;
  auto& app = scenario.add_app<app::SyntheticApp>(host, acfg,
                                                  app::SyntheticSpec{});
  app::AppConfig ncfg = chaos_app("near-id");
  ncfg.acl = steer_acl;  // lets alice and dave authenticate at `near`
  scenario.add_app<app::SyntheticApp>(near, ncfg, app::SyntheticSpec{});
  EXPECT_TRUE(scenario.run_until([&] {
    return app.registered() && near.peer_count() == 1 &&
           host.peer_count() == 1;
  }));

  scenario.net().set_trace_enabled(true);
  const proto::AppId id = app.app_id();

  // alice drives from `near`; dave queues behind her from `near` too.
  auto& alice = scenario.add_client("alice", near);
  EXPECT_TRUE(workload::sync_onboard_steerer(scenario.net(), alice, id));
  auto& dave = scenario.add_client("dave", near);
  EXPECT_TRUE(workload::sync_login(scenario.net(), dave).value().ok);
  EXPECT_TRUE(workload::sync_select(scenario.net(), dave, id).value().ok);
  EXPECT_TRUE(workload::sync_command(scenario.net(), dave, id,
                                     proto::CommandKind::acquire_lock)
                  .value()
                  .accepted);
  // carol waits at the host itself — the survivor.
  auto& carol = scenario.add_client("carol", host);
  EXPECT_TRUE(workload::sync_login(scenario.net(), carol).value().ok);
  EXPECT_TRUE(workload::sync_select(scenario.net(), carol, id).value().ok);
  EXPECT_TRUE(workload::sync_command(scenario.net(), carol, id,
                                     proto::CommandKind::acquire_lock)
                  .value()
                  .accepted);

  LockCrashRunResult out;
  // Mid-steer: alice is actively driving when her server dies.
  for (int i = 0; i < 3; ++i) {
    auto ack = workload::sync_command(
        scenario.net(), alice, id, proto::CommandKind::set_param, "param_0",
        proto::ParamValue{static_cast<double>(i)});
    EXPECT_TRUE(ack.ok() && ack.value().accepted);
  }
  EXPECT_EQ(host.lock_holder(id)->user, "alice");
  EXPECT_EQ(host.lock_queue_length(id), 2u);

  const util::TimePoint crashed_at = scenario.net().now();
  scenario.net().crash_node(near.node());

  // Watch every holder transition at the host while waiting for carol.
  const auto holder_name = [&] {
    const auto h = host.lock_holder(id);
    return h ? h->user + "@" + std::to_string(h->server) : std::string{"-"};
  };
  out.holders.push_back(holder_name());
  out.carol_acquired = scenario.run_until(
      [&] {
        const std::string h = holder_name();
        if (h != out.holders.back()) out.holders.push_back(h);
        if (h.rfind("dave@", 0) == 0) out.dave_ever_held = true;
        const auto held = host.lock_holder(id);
        return held.has_value() && held->user == "carol";
      },
      util::seconds(20));
  out.reacquire_delay = scenario.net().now() - crashed_at;
  out.host_stats = host.stats();
  out.trace = scenario.net().trace();
  return out;
}

TEST(ChaosTest, CrashedLockHolderIsReapedAndSurvivorAcquires) {
  const LockCrashRunResult run = run_lock_holder_crash(0xFA11);
  ASSERT_TRUE(run.carol_acquired);

  // Reaping (suspect detection) freed the lock, not the 30 s lease.
  EXPECT_LT(run.reacquire_delay, util::seconds(30));
  EXPECT_LT(run.reacquire_delay, util::seconds(10));
  EXPECT_EQ(run.host_stats.lock_holders_reaped, 1u);
  EXPECT_EQ(run.host_stats.lock_waiters_reaped, 1u);
  EXPECT_EQ(run.host_stats.lock_leases_expired, 0u);

  // Safety: the holder went alice -> carol with no interval of any other
  // holder — in particular dave, whose origin died while he was queued,
  // never held the lock.
  EXPECT_FALSE(run.dave_ever_held);
  for (const auto& h : run.holders) {
    EXPECT_TRUE(h.rfind("alice@", 0) == 0 || h.rfind("carol@", 0) == 0 ||
                h == "-")
        << "unexpected holder " << h;
  }
  EXPECT_EQ(run.holders.front().rfind("alice@", 0), 0u);
  EXPECT_EQ(run.holders.back().rfind("carol@", 0), 0u);
}

TEST(ChaosTest, LockHolderCrashRunsAreByteIdenticalPerSeed) {
  const LockCrashRunResult a = run_lock_holder_crash(0xFA11);
  const LockCrashRunResult b = run_lock_holder_crash(0xFA11);
  EXPECT_EQ(a.carol_acquired, b.carol_acquired);
  EXPECT_EQ(a.reacquire_delay, b.reacquire_delay);
  EXPECT_EQ(a.holders, b.holders);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_FALSE(a.trace.empty());
}

// ---------------------------------------------------------------------------
// ThreadNetwork smoke: the real-time backend's fault plan + ORB retries.
// Runs under TSan in the chaos tier to race-check the fault bookkeeping.
// ---------------------------------------------------------------------------

class EchoServant : public orb::Servant {
 public:
  [[nodiscard]] std::string interface_name() const override { return "Echo"; }
  void dispatch(const std::string& method, wire::Decoder&, wire::Encoder& out,
                orb::DispatchContext&) override {
    if (method != "echo") {
      throw orb::OrbException{util::Errc::invalid_argument, "no " + method};
    }
    out.u32(7);
  }
};

class ThreadOrbNode : public net::MessageHandler {
 public:
  explicit ThreadOrbNode(net::Network& net) : network_(net) {}
  void init(net::NodeId self) {
    orb = std::make_unique<orb::Orb>(network_, self);
  }
  void on_message(const net::Message& msg) override { orb->handle(msg); }
  net::Network& network_;
  std::unique_ptr<orb::Orb> orb;
};

TEST(ThreadChaosTest, OrbRetriesThroughRealTimeDrops) {
  net::ThreadNetwork net;
  net.set_fault_seed(0xD00D);
  net::FaultPlan plan;
  plan.drop_prob = 0.3;
  net.set_fault_plan(plan);

  ThreadOrbNode caller(net);
  ThreadOrbNode callee(net);
  const net::NodeId nc = net.add_node("caller", &caller);
  const net::NodeId ns = net.add_node("callee", &callee);
  caller.init(nc);
  callee.init(ns);
  net::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff = util::milliseconds(10);
  policy.max_backoff = util::milliseconds(50);
  caller.orb->set_retry_policy(policy);
  const orb::ObjectRef ref = callee.orb->activate(
      std::make_shared<EchoServant>());
  net.start();

  std::atomic<int> ok{0};
  std::atomic<int> done{0};
  constexpr int kCalls = 32;
  net.post(nc, [&] {
    for (int i = 0; i < kCalls; ++i) {
      caller.orb->invoke(ref, "echo", wire::Encoder{},
                         [&](util::Result<util::Bytes> r) {
                           if (r.ok()) ok.fetch_add(1);
                           done.fetch_add(1);
                         },
                         util::milliseconds(50));
    }
  });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (done.load() < kCalls &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  net.stop();
  EXPECT_EQ(done.load(), kCalls);
  // With 10 attempts at 30% loss, effectively every call survives; require
  // the vast majority so scheduling noise can't flake the assertion.
  EXPECT_GE(ok.load(), kCalls - 2);
  EXPECT_GT(net.fault_stats().dropped, 0u);
}

// ---------------------------------------------------------------------------
// Sharded-origin batched push through a mid-batch partition (DESIGN.md §5j):
// the pushing server runs shard_count = 4, so each owning core keeps its own
// per-peer outbox.  A blackout opens while a batch is in flight; after the
// heal the requeued tail must drain with the exactly-once in-order guarantee
// the unsharded ChaosTest.BatchedPush* tests pin.
// ---------------------------------------------------------------------------

TEST(ThreadChaosTest, ShardedOriginBatchedPushSurvivesPartition) {
  core::ServerConfig tmpl;
  tmpl.shard_count = 4;
  tmpl.peer_refresh_period = util::milliseconds(100);
  tmpl.orb_call_timeout = util::milliseconds(500);
  tmpl.peer_suspect_threshold = 0;  // ride the blackout out with retries
  tmpl.orb_retry.max_attempts = 8;
  tmpl.orb_retry.initial_backoff = util::milliseconds(100);
  tmpl.orb_retry.max_backoff = util::seconds(1);
  workload::ThreadScenario scenario(tmpl);
  auto& near = scenario.add_server("near", 1);
  auto& host = scenario.add_server("host", 2);

  app::AppConfig watched = chaos_app("far");
  watched.update_every = 0;  // chats only: the assertion is on their order
  auto& app = scenario.add_app<app::SyntheticApp>(host, watched,
                                                  app::SyntheticSpec{});
  app::AppConfig anchor = chaos_app("near-id");
  anchor.update_every = 0;
  scenario.add_app<app::SyntheticApp>(near, anchor, app::SyntheticSpec{});
  auto& alice = scenario.add_client("alice", near);
  auto& bob = scenario.add_client("bob", host);
  scenario.start();
  ASSERT_TRUE(host.sharded());
  ASSERT_TRUE(workload::wait_for(
      scenario.net(),
      [&] {
        return app.registered() && near.peer_count() == 1 &&
               host.peer_count() == 1;
      },
      util::seconds(30)));

  ASSERT_TRUE(workload::wait_for(
      scenario.net(),
      [&] {
        auto l = workload::sync_login(scenario.net(), alice);
        if (!l.ok() || !l.value().ok) return false;
        auto sel = workload::sync_select(scenario.net(), alice, app.app_id());
        return sel.ok() && sel.value().ok;
      },
      util::seconds(30)));
  ASSERT_TRUE(workload::sync_group_op(scenario.net(), alice, app.app_id(),
                                      proto::GroupOp::enable_push, "")
                  .value()
                  .ok);
  ASSERT_TRUE(workload::sync_login(scenario.net(), bob).value().ok);
  ASSERT_TRUE(
      workload::sync_select(scenario.net(), bob, app.app_id()).value().ok);

  for (int i = 0; i < 10; ++i) {
    if (i == 4) {
      // Blackout between the two server nodes while pushed chats are in
      // flight: the owning core's outbox requeues and retries.
      scenario.net().partition(near.node(), host.node());
    }
    ASSERT_TRUE(workload::sync_collab_post(scenario.net(), bob, app.app_id(),
                                           proto::EventKind::chat,
                                           "c" + std::to_string(i),
                                           util::seconds(60))
                    .value()
                    .ok);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (i == 7) scenario.net().heal(near.node(), host.node());
  }

  // Read alice's recording on her own worker (actor model): the vector
  // is only safe to touch from that thread while the network runs.
  const auto chat_count = [&] {
    std::promise<std::size_t> p;
    scenario.net().post(alice.node(), [&] {
      std::size_t chats = 0;
      for (const auto& ev : alice.received_events()) {
        if (ev.kind == proto::EventKind::chat) ++chats;
      }
      p.set_value(chats);
    });
    return p.get_future().get();
  };
  ASSERT_TRUE(workload::wait_for(scenario.net(),
                                 [&] { return chat_count() >= 10; },
                                 util::seconds(60)));
  scenario.stop();

  EXPECT_GT(scenario.net().fault_stats().partition_drops, 0u);
  EXPECT_GT(host.stats_sum().peer_batches_out, 0u);

  // Exactly-once, in order: host-assigned sequences strictly increase in
  // arrival order, and every chat arrived once in posting order.
  std::vector<proto::ClientEvent> watched_events;
  for (const auto& ev : alice.received_events()) {
    if (ev.app == app.app_id()) watched_events.push_back(ev);
  }
  ASSERT_FALSE(watched_events.empty());
  for (std::size_t i = 1; i < watched_events.size(); ++i) {
    EXPECT_LT(watched_events[i - 1].seq, watched_events[i].seq)
        << "duplicate or reordered event at index " << i;
  }
  std::vector<std::string> chats;
  for (const auto& ev : watched_events) {
    if (ev.kind == proto::EventKind::chat) chats.push_back(ev.text);
  }
  const std::vector<std::string> want = {"c0", "c1", "c2", "c3", "c4",
                                         "c5", "c6", "c7", "c8", "c9"};
  EXPECT_EQ(chats, want);
}

}  // namespace
}  // namespace discover
