#include <gtest/gtest.h>

#include <atomic>

#include "net/sim_network.h"
#include "net/thread_network.h"

namespace discover::net {
namespace {

/// Records everything it receives.
class Recorder : public MessageHandler {
 public:
  void on_message(const Message& msg) override {
    received.push_back(msg);
  }
  std::vector<Message> received;
};

TEST(SimNetworkTest, DeliversWithLinkLatency) {
  SimNetwork net;
  net.set_lan_model({util::milliseconds(1), 1e12});
  Recorder a;
  Recorder b;
  const NodeId na = net.add_node("a", &a);
  const NodeId nb = net.add_node("b", &b);
  net.send(na, nb, Channel::main_channel, util::to_bytes("hi"));
  EXPECT_EQ(net.run_until_idle(), 1u);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(util::to_string(b.received[0].payload), "hi");
  EXPECT_EQ(net.now(), util::milliseconds(1));
}

TEST(SimNetworkTest, WanVsLanLatency) {
  SimNetwork net;
  net.set_lan_model({util::microseconds(100), 1e12});
  net.set_wan_model({util::milliseconds(30), 1e12});
  Recorder a;
  Recorder b;
  Recorder c;
  const NodeId na = net.add_node("a", &a, DomainId{1});
  const NodeId nb = net.add_node("b", &b, DomainId{1});
  const NodeId nc = net.add_node("c", &c, DomainId{2});
  net.send(na, nb, Channel::main_channel, {});  // LAN
  net.run_until_idle();
  EXPECT_EQ(net.now(), util::microseconds(100));
  net.send(na, nc, Channel::main_channel, {});  // WAN
  net.run_until_idle();
  EXPECT_EQ(net.now(), util::microseconds(100) + util::milliseconds(30));
}

TEST(SimNetworkTest, BandwidthAddsSerializationDelay) {
  SimNetwork net;
  net.set_lan_model({0, 1000.0});  // 1000 B/s
  Recorder a;
  Recorder b;
  const NodeId na = net.add_node("a", &a);
  const NodeId nb = net.add_node("b", &b);
  net.send(na, nb, Channel::main_channel, util::Bytes(500, 0));  // 0.5 s
  net.run_until_idle();
  EXPECT_EQ(net.now(), util::kSecond / 2);
}

TEST(SimNetworkTest, FifoPerDirectedPairEvenWithMixedSizes) {
  SimNetwork net;
  net.set_lan_model({util::milliseconds(1), 1000.0});
  Recorder a;
  Recorder b;
  const NodeId na = net.add_node("a", &a);
  const NodeId nb = net.add_node("b", &b);
  // Large message first, tiny second: the tiny one must NOT overtake.
  net.send(na, nb, Channel::main_channel, util::Bytes(900, 1));
  net.send(na, nb, Channel::main_channel, util::Bytes(1, 2));
  net.run_until_idle();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].payload.size(), 900u);
  EXPECT_EQ(b.received[1].payload.size(), 1u);
}

TEST(SimNetworkTest, TimersFireInOrderAndCancel) {
  SimNetwork net;
  Recorder a;
  const NodeId na = net.add_node("a", &a);
  std::vector<int> fired;
  net.schedule(na, util::milliseconds(10), [&] { fired.push_back(2); });
  net.schedule(na, util::milliseconds(5), [&] { fired.push_back(1); });
  const TimerId cancelled =
      net.schedule(na, util::milliseconds(7), [&] { fired.push_back(99); });
  net.cancel(cancelled);
  net.run_until_idle();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(SimNetworkTest, DeterministicEventOrderAcrossRuns) {
  const auto run = [](std::uint64_t /*seed*/) {
    SimNetwork net;
    net.set_lan_model({util::milliseconds(1), 1e9});
    Recorder recv;
    std::vector<NodeId> senders;
    const NodeId sink = net.add_node("sink", &recv);
    Recorder dummy;
    for (int i = 0; i < 5; ++i) {
      senders.push_back(net.add_node("s" + std::to_string(i), &dummy));
    }
    for (int round = 0; round < 10; ++round) {
      for (std::size_t s = 0; s < senders.size(); ++s) {
        net.send(senders[s], sink, Channel::main_channel,
                 util::to_bytes(std::to_string(round * 10 + s)));
      }
    }
    net.run_until_idle();
    std::string trace;
    for (const auto& m : recv.received) {
      trace += util::to_string(m.payload) + ",";
    }
    return trace;
  };
  EXPECT_EQ(run(1), run(1));
}

TEST(SimNetworkTest, TrafficAccountingSplitsWanAndLan) {
  SimNetwork net;
  Recorder a;
  Recorder b;
  Recorder c;
  const NodeId na = net.add_node("a", &a, DomainId{1});
  const NodeId nb = net.add_node("b", &b, DomainId{1});
  const NodeId nc = net.add_node("c", &c, DomainId{2});
  net.send(na, nb, Channel::main_channel, util::Bytes(10, 0));
  net.send(na, nc, Channel::main_channel, util::Bytes(20, 0));
  net.run_until_idle();
  const TrafficStats t = net.traffic();
  EXPECT_EQ(t.messages, 2u);
  EXPECT_EQ(t.bytes, 30u);
  EXPECT_EQ(t.wan_messages, 1u);
  EXPECT_EQ(t.wan_bytes, 20u);
  net.reset_traffic();
  EXPECT_EQ(net.traffic().messages, 0u);
}

TEST(SimNetworkTest, RunForAdvancesVirtualTimeEvenWhenIdle) {
  SimNetwork net;
  Recorder a;
  net.add_node("a", &a);
  net.run_for(util::seconds(5));
  EXPECT_EQ(net.now(), util::seconds(5));
}

TEST(SimNetworkTest, RunUntilPredicate) {
  SimNetwork net;
  Recorder a;
  const NodeId na = net.add_node("a", &a);
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 10) net.schedule(na, util::milliseconds(1), tick);
  };
  net.schedule(na, 0, tick);
  EXPECT_TRUE(net.run_until([&] { return count >= 5; }));
  EXPECT_EQ(count, 5);
}

TEST(SimNetworkTest, NodeMetadata) {
  SimNetwork net;
  Recorder a;
  const NodeId na = net.add_node("alpha", &a, DomainId{3});
  EXPECT_EQ(net.node_name(na), "alpha");
  EXPECT_EQ(net.node_domain(na), DomainId{3});
}

// ---------------------------------------------------------------------------
// ThreadNetwork
// ---------------------------------------------------------------------------

class CountingHandler : public MessageHandler {
 public:
  void on_message(const Message&) override {
    count.fetch_add(1, std::memory_order_relaxed);
  }
  std::atomic<int> count{0};
};

TEST(ThreadNetworkTest, DeliversMessages) {
  ThreadNetwork net;
  CountingHandler a;
  CountingHandler b;
  const NodeId na = net.add_node("a", &a);
  const NodeId nb = net.add_node("b", &b);
  net.start();
  for (int i = 0; i < 100; ++i) {
    net.send(na, nb, Channel::main_channel, util::Bytes(8, 0));
  }
  EXPECT_TRUE(net.wait_idle(util::seconds(5)));
  EXPECT_EQ(b.count.load(), 100);
  net.stop();
}

TEST(ThreadNetworkTest, TimersRun) {
  ThreadNetwork net;
  CountingHandler a;
  const NodeId na = net.add_node("a", &a);
  net.start();
  std::atomic<bool> fired{false};
  net.schedule(na, util::milliseconds(5), [&] { fired.store(true); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!fired.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fired.load());
  net.stop();
}

TEST(ThreadNetworkTest, CancelledTimerDoesNotFire) {
  ThreadNetwork net;
  CountingHandler a;
  const NodeId na = net.add_node("a", &a);
  net.start();
  std::atomic<bool> fired{false};
  const TimerId id =
      net.schedule(na, util::milliseconds(50), [&] { fired.store(true); });
  net.cancel(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_FALSE(fired.load());
  net.stop();
}

TEST(ThreadNetworkTest, HandlerRunsOnSingleThreadPerNode) {
  // The actor guarantee: no two handler invocations for one node overlap.
  class RaceDetector : public MessageHandler {
   public:
    void on_message(const Message&) override {
      const int in = depth.fetch_add(1, std::memory_order_acq_rel);
      EXPECT_EQ(in, 0);
      // Give a would-be concurrent call a chance to overlap.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      depth.fetch_sub(1, std::memory_order_acq_rel);
      ++handled;
    }
    std::atomic<int> depth{0};
    int handled = 0;
  };
  ThreadNetwork net;
  RaceDetector d;
  CountingHandler src;
  const NodeId ns = net.add_node("src", &src);
  const NodeId nd = net.add_node("dst", &d);
  net.start();
  for (int i = 0; i < 64; ++i) {
    net.send(ns, nd, Channel::main_channel, {});
  }
  EXPECT_TRUE(net.wait_idle(util::seconds(10)));
  EXPECT_EQ(d.handled, 64);
  net.stop();
}

TEST(ThreadNetworkTest, StopIsIdempotentAndSafe) {
  ThreadNetwork net;
  CountingHandler a;
  net.add_node("a", &a);
  net.start();
  net.stop();
  net.stop();
}

}  // namespace
}  // namespace discover::net
