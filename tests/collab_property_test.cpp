// DESIGN.md §5 collaboration invariants, randomized across a two-server
// deployment: every group member receives every shared chat exactly once
// (identified by the host-assigned seq), sub-group messages never leak,
// and update events are never duplicated at any client.
#include <gtest/gtest.h>

#include <set>

#include "app/synthetic.h"
#include "util/rng.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;

struct Member {
  core::DiscoverClient* client = nullptr;
  std::string subgroup;
};

class CollabFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CollabFuzzTest, ExactlyOnceAndNoSubgroupLeaks) {
  util::Rng rng(GetParam());
  workload::ScenarioConfig cfg;
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  cfg.server_template.remote_update_mode =
      rng.chance(0.5) ? core::RemoteUpdateMode::push
                      : core::RemoteUpdateMode::poll;
  cfg.server_template.remote_poll_period = util::milliseconds(20);
  workload::Scenario scenario(cfg);
  auto& host = scenario.add_server("host", 1);
  auto& peer = scenario.add_server("peer", 2);

  constexpr int kMembers = 6;
  std::vector<security::AclEntry> acl;
  for (int i = 0; i < kMembers; ++i) {
    acl.push_back({"m" + std::to_string(i), Privilege::read_write, 0});
  }
  app::AppConfig app_cfg;
  app_cfg.name = "board";
  app_cfg.acl = acl;
  app_cfg.step_time = util::milliseconds(2);
  app_cfg.update_every = 10;
  app_cfg.interact_every = 0;
  auto& app = scenario.add_app<app::SyntheticApp>(host, app_cfg,
                                                  app::SyntheticSpec{});
  app::AppConfig id_cfg = app_cfg;
  id_cfg.name = "identity";
  id_cfg.update_every = 0;
  scenario.add_app<app::SyntheticApp>(peer, id_cfg, app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] {
    return app.registered() && host.peer_count() == 1 &&
           peer.peer_count() == 1;
  }));
  const proto::AppId id = app.app_id();

  // Members split across the two servers; a random subset joins a
  // sub-group.
  std::vector<Member> members;
  for (int i = 0; i < kMembers; ++i) {
    auto& c = scenario.add_client("m" + std::to_string(i),
                                  i % 2 == 0 ? host : peer);
    ASSERT_TRUE(workload::sync_login(scenario.net(), c).value().ok);
    ASSERT_TRUE(workload::sync_select(scenario.net(), c, id).value().ok);
    Member m;
    m.client = &c;
    if (rng.chance(0.4)) {
      m.subgroup = "team";
      ASSERT_TRUE(workload::sync_group_op(scenario.net(), c, id,
                                          proto::GroupOp::join_subgroup,
                                          "team")
                      .value().ok);
    }
    members.push_back(m);
  }

  // Random chat traffic from random members.
  struct SentChat {
    std::string sender;
    std::string subgroup;
    std::string text;
  };
  std::vector<SentChat> sent;
  for (int round = 0; round < 25; ++round) {
    Member& m = members[rng.below(members.size())];
    const std::string text = "msg-" + std::to_string(round);
    ASSERT_TRUE(workload::sync_collab_post(scenario.net(), *m.client, id,
                                           proto::EventKind::chat, text)
                    .value().ok);
    sent.push_back({m.client->user(), m.subgroup, text});
    if (rng.chance(0.5)) scenario.run_for(util::milliseconds(30));
  }
  // Let everything propagate, then drain every member several times.
  scenario.run_for(util::milliseconds(500));
  for (int i = 0; i < 10; ++i) {
    for (Member& m : members) {
      (void)workload::sync_poll(scenario.net(), *m.client, id);
    }
    scenario.run_for(util::milliseconds(50));
  }

  for (const Member& m : members) {
    // Exactly-once: no (seq) duplicates of any kind at any member.
    std::set<std::uint64_t> seqs;
    for (const auto& ev : m.client->received_events()) {
      if (ev.seq == 0) continue;
      EXPECT_TRUE(seqs.insert(ev.seq).second)
          << m.client->user() << " saw seq " << ev.seq << " twice";
    }
    // Chat visibility: a member must see exactly the chats of its scope.
    std::multiset<std::string> seen_chats;
    for (const auto& ev : m.client->received_events()) {
      if (ev.kind == proto::EventKind::chat) seen_chats.insert(ev.text);
    }
    for (const SentChat& chat : sent) {
      const bool should_see =
          chat.sender == m.client->user() || chat.subgroup == m.subgroup;
      const auto copies = seen_chats.count(chat.text);
      if (should_see) {
        EXPECT_EQ(copies, 1u)
            << m.client->user() << " (sub '" << m.subgroup << "') saw "
            << copies << " copies of " << chat.text << " from "
            << chat.sender << " (sub '" << chat.subgroup << "')";
      } else {
        EXPECT_EQ(copies, 0u)
            << m.client->user() << " must not see " << chat.text;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollabFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace discover
