// Steering-sensitivity properties: changing a steerable parameter must
// measurably change each solver's dynamics — otherwise "interactive
// steering" is theatre.  Each test runs two copies of a solver that differ
// only in one steered parameter and checks the physically expected
// ordering.
#include <gtest/gtest.h>

#include "app/heat2d.h"
#include "app/inspiral.h"
#include "app/reservoir.h"
#include "app/wave1d.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover::app {
namespace {

using security::Privilege;
using workload::make_acl;

AppConfig fast_config(const std::string& name) {
  AppConfig cfg;
  cfg.name = name;
  cfg.acl = make_acl({{"alice", Privilege::steer}});
  cfg.step_time = util::milliseconds(1);
  cfg.update_every = 0;
  cfg.interact_every = 2;  // responsive to steering
  cfg.interaction_window = util::milliseconds(1);
  return cfg;
}

/// Steers `param` on one of two otherwise-identical apps and runs both to
/// `steps`.
template <typename App>
void steer_one(workload::Scenario& scenario, core::DiscoverServer& server,
               App& steered, const std::string& param, double value,
               std::uint64_t steps, App& control) {
  auto& alice = scenario.add_client("alice", server);
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario.net(), alice,
                                             steered.app_id()));
  ASSERT_TRUE(workload::sync_command(scenario.net(), alice, steered.app_id(),
                                     proto::CommandKind::set_param, param,
                                     proto::ParamValue{value})
                  .value().accepted);
  ASSERT_TRUE(scenario.run_until(
      [&] { return steered.steps() >= steps && control.steps() >= steps; },
      util::seconds(120)));
}

TEST(SolverSensitivityTest, LowDiffusivityDelaysHeating) {
  // Compare during the transient (before both plates reach steady state):
  // an order-of-magnitude lower alpha must leave the plate colder.
  workload::Scenario scenario;
  auto& server = scenario.add_server("s", 1);
  auto& normal =
      scenario.add_app<Heat2DApp>(server, fast_config("normal"), 16);
  auto& sluggish =
      scenario.add_app<Heat2DApp>(server, fast_config("sluggish"), 16);
  ASSERT_TRUE(scenario.run_until(
      [&] { return normal.registered() && sluggish.registered(); }));
  steer_one(scenario, server, sluggish, "alpha", 0.02, 120, normal);
  EXPECT_LT(sluggish.avg_temperature(), normal.avg_temperature());
}

TEST(SolverSensitivityTest, HotterSourceRaisesPlateTemperature) {
  workload::Scenario scenario;
  auto& server = scenario.add_server("s", 1);
  auto& blazing =
      scenario.add_app<Heat2DApp>(server, fast_config("blazing"), 16);
  auto& mild = scenario.add_app<Heat2DApp>(server, fast_config("mild"), 16);
  ASSERT_TRUE(scenario.run_until(
      [&] { return blazing.registered() && mild.registered(); }));
  steer_one(scenario, server, blazing, "source_temp", 500.0, 300, mild);
  EXPECT_GT(blazing.max_temperature(), mild.max_temperature() * 2);
}

TEST(SolverSensitivityTest, LowerInjectionSlowsWaterBreakthrough) {
  workload::Scenario scenario;
  auto& server = scenario.add_server("s", 1);
  auto& flood =
      scenario.add_app<ReservoirApp>(server, fast_config("flood"), 16, 16);
  auto& trickle =
      scenario.add_app<ReservoirApp>(server, fast_config("trickle"), 16, 16);
  ASSERT_TRUE(scenario.run_until(
      [&] { return flood.registered() && trickle.registered(); }));
  // Compare mid-flood (before both wells water out completely): trickle
  // injects 50 bbl/day vs flood's default 500.
  steer_one(scenario, server, trickle, "injection_rate", 50.0, 300, flood);
  EXPECT_LT(trickle.water_cut(), flood.water_cut());
}

TEST(SolverSensitivityTest, ProducerBhpControlsDrawdown) {
  workload::Scenario scenario;
  auto& server = scenario.add_server("s", 1);
  auto& open =
      scenario.add_app<ReservoirApp>(server, fast_config("open"), 16, 16);
  auto& choked =
      scenario.add_app<ReservoirApp>(server, fast_config("choked"), 16, 16);
  ASSERT_TRUE(scenario.run_until(
      [&] { return open.registered() && choked.registered(); }));
  // Choked producer held near reservoir pressure -> little drawdown.
  steer_one(scenario, server, choked, "producer_bhp", 2900.0, 500, open);
  EXPECT_LT(choked.oil_rate(), open.oil_rate());
}

TEST(SolverSensitivityTest, FasterMediumCarriesMoreEnergy) {
  workload::Scenario scenario;
  auto& server = scenario.add_server("s", 1);
  auto& fast = scenario.add_app<Wave1DApp>(server, fast_config("fast"), 128);
  auto& slow = scenario.add_app<Wave1DApp>(server, fast_config("slow"), 128);
  ASSERT_TRUE(scenario.run_until(
      [&] { return fast.registered() && slow.registered(); }));
  steer_one(scenario, server, slow, "velocity", 0.1, 400, fast);
  // With a slower medium the injected energy stays localized; the faster
  // default (0.4) spreads it across more cells.
  EXPECT_NE(fast.energy(), slow.energy());
  EXPECT_GT(fast.peak_amplitude(), 0.0);
  EXPECT_GT(slow.peak_amplitude(), 0.0);
}

TEST(SolverSensitivityTest, AsymmetricBinariesInspiralSlower) {
  workload::Scenario scenario;
  auto& server = scenario.add_server("s", 1);
  auto& equal =
      scenario.add_app<InspiralApp>(server, fast_config("equal"));
  auto& asym = scenario.add_app<InspiralApp>(server, fast_config("asym"));
  ASSERT_TRUE(scenario.run_until(
      [&] { return equal.registered() && asym.registered(); }));
  // dr/dt ~ -eta: the equal-mass binary (eta=0.25 default) decays fastest.
  steer_one(scenario, server, asym, "eta", 0.05, 500, equal);
  EXPECT_GT(asym.separation(), equal.separation());
}

TEST(SolverSensitivityTest, SteeringMidRunChangesTrajectory) {
  // A single app steered mid-flight must diverge from its own earlier
  // trend: freeze the heat source, confirm the plate stops heating.
  workload::Scenario scenario;
  auto& server = scenario.add_server("s", 1);
  auto& heat = scenario.add_app<Heat2DApp>(server, fast_config("h"), 16);
  ASSERT_TRUE(scenario.run_until([&] { return heat.registered(); }));
  auto& alice = scenario.add_client("alice", server);
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario.net(), alice,
                                             heat.app_id()));
  ASSERT_TRUE(scenario.run_until([&] { return heat.steps() >= 200; }));
  const double before = heat.avg_temperature();
  // Kill the source; diffusion alone cannot raise the average.
  ASSERT_TRUE(workload::sync_command(scenario.net(), alice, heat.app_id(),
                                     proto::CommandKind::set_param,
                                     "source_temp", proto::ParamValue{0.0})
                  .value().accepted);
  ASSERT_TRUE(scenario.run_until([&] { return heat.steps() >= 600; },
                                 util::seconds(60)));
  EXPECT_LT(heat.avg_temperature(), before * 1.5);
}

}  // namespace
}  // namespace discover::app
