#include <gtest/gtest.h>

#include "net/sim_network.h"
#include "orb/naming.h"
#include "orb/orb.h"
#include "orb/trader.h"

namespace discover::orb {
namespace {

/// A servant exposing add/fail/defer methods for the tests.
class CalcServant : public Servant {
 public:
  explicit CalcServant(net::Network* net = nullptr, net::NodeId self = {})
      : net_(net), self_(self) {}

  [[nodiscard]] std::string interface_name() const override { return "Calc"; }

  void dispatch(const std::string& method, wire::Decoder& args,
                wire::Encoder& out, DispatchContext& ctx) override {
    if (method == "add") {
      const std::int64_t a = args.i64();
      const std::int64_t b = args.i64();
      out.i64(a + b);
      ++calls;
    } else if (method == "whoami") {
      out.u32(ctx.requester.value());
    } else if (method == "fail") {
      throw OrbException{util::Errc::failed_precondition, "deliberate"};
    } else if (method == "defer_add") {
      const std::int64_t a = args.i64();
      const std::int64_t b = args.i64();
      auto reply = ctx.defer();
      net_->schedule(self_, util::milliseconds(3), [reply, a, b] {
        wire::Encoder result;
        result.i64(a + b);
        reply->reply(std::move(result));
      });
    } else {
      throw OrbException{util::Errc::invalid_argument, "no method " + method};
    }
  }

  net::Network* net_;
  net::NodeId self_;
  int calls = 0;
};

class OrbNode : public net::MessageHandler {
 public:
  explicit OrbNode(net::Network& net) : network_(net) {}
  void init(net::NodeId self) {
    self_ = self;
    orb = std::make_unique<Orb>(network_, self);
  }
  void on_message(const net::Message& msg) override { orb->handle(msg); }
  net::Network& network_;
  net::NodeId self_{0};
  std::unique_ptr<Orb> orb;
};

class OrbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_.set_lan_model({util::milliseconds(1), 1e9});
    a_ = std::make_unique<OrbNode>(net_);
    b_ = std::make_unique<OrbNode>(net_);
    na_ = net_.add_node("a", a_.get());
    nb_ = net_.add_node("b", b_.get());
    a_->init(na_);
    b_->init(nb_);
  }

  net::SimNetwork net_;
  std::unique_ptr<OrbNode> a_;
  std::unique_ptr<OrbNode> b_;
  net::NodeId na_{0};
  net::NodeId nb_{0};
};

TEST_F(OrbTest, RemoteInvocation) {
  auto servant = std::make_shared<CalcServant>();
  const ObjectRef ref = b_->orb->activate(servant);
  EXPECT_EQ(ref.interface, "Calc");

  wire::Encoder args;
  args.i64(20);
  args.i64(22);
  std::int64_t result = 0;
  a_->orb->invoke(ref, "add", std::move(args),
                  [&](util::Result<util::Bytes> r) {
                    ASSERT_TRUE(r.ok()) << r.error().message;
                    wire::Decoder d(r.value());
                    result = d.i64();
                  });
  net_.run_until_idle();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(servant->calls, 1);
  // One request + one reply over the wire.
  EXPECT_EQ(net_.traffic().messages, 2u);
}

TEST_F(OrbTest, CollocatedInvocationSkipsNetworkButStaysAsync) {
  auto servant = std::make_shared<CalcServant>();
  const ObjectRef ref = a_->orb->activate(servant);
  wire::Encoder args;
  args.i64(1);
  args.i64(2);
  bool called_inline = true;
  std::int64_t result = 0;
  a_->orb->invoke(ref, "add", std::move(args),
                  [&](util::Result<util::Bytes> r) {
                    ASSERT_TRUE(r.ok());
                    wire::Decoder d(r.value());
                    result = d.i64();
                    called_inline = false;  // overwritten below if deferred
                  });
  const bool was_deferred = (result == 0);
  net_.run_until_idle();
  EXPECT_TRUE(was_deferred);
  (void)called_inline;
  EXPECT_EQ(result, 3);
  EXPECT_EQ(net_.traffic().messages, 0u);  // no wire traffic
}

TEST_F(OrbTest, RequesterIdentityIsVisible) {
  const ObjectRef ref = b_->orb->activate(std::make_shared<CalcServant>());
  std::uint32_t who = 0;
  a_->orb->invoke(ref, "whoami", wire::Encoder{},
                  [&](util::Result<util::Bytes> r) {
                    ASSERT_TRUE(r.ok());
                    wire::Decoder d(r.value());
                    who = d.u32();
                  });
  net_.run_until_idle();
  EXPECT_EQ(who, na_.value());
}

TEST_F(OrbTest, ExceptionsPropagateAsErrors) {
  const ObjectRef ref = b_->orb->activate(std::make_shared<CalcServant>());
  util::Errc code = util::Errc::ok;
  a_->orb->invoke(ref, "fail", wire::Encoder{},
                  [&](util::Result<util::Bytes> r) {
                    ASSERT_FALSE(r.ok());
                    code = r.error().code;
                  });
  net_.run_until_idle();
  EXPECT_EQ(code, util::Errc::failed_precondition);
}

TEST_F(OrbTest, UnknownServantAndMethod) {
  ObjectRef bogus;
  bogus.node = nb_.value();
  bogus.key = 999;
  util::Errc code = util::Errc::ok;
  a_->orb->invoke(bogus, "add", wire::Encoder{},
                  [&](util::Result<util::Bytes> r) {
                    ASSERT_FALSE(r.ok());
                    code = r.error().code;
                  });
  net_.run_until_idle();
  EXPECT_EQ(code, util::Errc::not_found);

  const ObjectRef ref = b_->orb->activate(std::make_shared<CalcServant>());
  a_->orb->invoke(ref, "nope", wire::Encoder{},
                  [&](util::Result<util::Bytes> r) {
                    ASSERT_FALSE(r.ok());
                    code = r.error().code;
                  });
  net_.run_until_idle();
  EXPECT_EQ(code, util::Errc::invalid_argument);
}

TEST_F(OrbTest, DeferredReplyCompletesLater) {
  auto servant = std::make_shared<CalcServant>(&net_, nb_);
  const ObjectRef ref = b_->orb->activate(servant);
  wire::Encoder args;
  args.i64(5);
  args.i64(6);
  std::int64_t result = 0;
  a_->orb->invoke(ref, "defer_add", std::move(args),
                  [&](util::Result<util::Bytes> r) {
                    ASSERT_TRUE(r.ok());
                    wire::Decoder d(r.value());
                    result = d.i64();
                  });
  net_.run_until_idle();
  EXPECT_EQ(result, 11);
}

TEST_F(OrbTest, TimeoutWhenServantNeverAnswers) {
  // Deactivated-but-referenced key on a node that exists: servant lookup
  // fails -> error, so use a node that never processes giop: client node
  // itself isn't one... instead deactivate after activate and rely on
  // not_found; timeout path: target a servant whose reply we drop by
  // pointing the ref at a non-orb... simplest: invoke on an address with no
  // handler attached is impossible here, so test the timer directly via a
  // deferred servant that never completes.
  class SilentServant : public Servant {
   public:
    [[nodiscard]] std::string interface_name() const override {
      return "Silent";
    }
    void dispatch(const std::string&, wire::Decoder&, wire::Encoder&,
                  DispatchContext& ctx) override {
      keep_alive = ctx.defer();  // never completed
    }
    std::shared_ptr<DeferredReply> keep_alive;
  };
  const ObjectRef ref = b_->orb->activate(std::make_shared<SilentServant>());
  util::Errc code = util::Errc::ok;
  a_->orb->invoke(
      ref, "anything", wire::Encoder{},
      [&](util::Result<util::Bytes> r) {
        ASSERT_FALSE(r.ok());
        code = r.error().code;
      },
      util::milliseconds(100));
  net_.run_until_idle();
  EXPECT_EQ(code, util::Errc::timeout);
}

TEST_F(OrbTest, DeactivateMakesServantUnreachable) {
  const ObjectRef ref = b_->orb->activate(std::make_shared<CalcServant>());
  b_->orb->deactivate(ref.key);
  util::Errc code = util::Errc::ok;
  a_->orb->invoke(ref, "add", wire::Encoder{},
                  [&](util::Result<util::Bytes> r) { code = r.error().code; });
  net_.run_until_idle();
  EXPECT_EQ(code, util::Errc::not_found);
}

// ---------------------------------------------------------------------------
// Naming service
// ---------------------------------------------------------------------------

TEST_F(OrbTest, NamingBindResolveUnbind) {
  const ObjectRef naming_ref =
      b_->orb->activate(std::make_shared<NamingService>());
  const ObjectRef target = b_->orb->activate(std::make_shared<CalcServant>());
  NamingClient naming(*a_->orb, naming_ref);

  bool bound = false;
  naming.bind("calc", target, [&](util::Status s) { bound = s.ok(); });
  net_.run_until_idle();
  EXPECT_TRUE(bound);

  ObjectRef resolved;
  naming.resolve("calc", [&](util::Result<ObjectRef> r) {
    ASSERT_TRUE(r.ok());
    resolved = r.value();
  });
  net_.run_until_idle();
  EXPECT_EQ(resolved, target);

  // Duplicate bind fails; rebind succeeds.
  util::Errc code = util::Errc::ok;
  naming.bind("calc", target,
              [&](util::Status s) { code = s.error().code; });
  net_.run_until_idle();
  EXPECT_EQ(code, util::Errc::already_exists);
  bool rebound = false;
  naming.rebind("calc", target, [&](util::Status s) { rebound = s.ok(); });
  net_.run_until_idle();
  EXPECT_TRUE(rebound);

  bool unbound = false;
  naming.unbind("calc", [&](util::Status s) { unbound = s.ok(); });
  net_.run_until_idle();
  EXPECT_TRUE(unbound);
  naming.resolve("calc", [&](util::Result<ObjectRef> r) {
    EXPECT_FALSE(r.ok());
  });
  net_.run_until_idle();
}

// ---------------------------------------------------------------------------
// Trader service
// ---------------------------------------------------------------------------

TEST(ConstraintTest, Matching) {
  const std::map<std::string, std::string> props{{"name", "rutgers"},
                                                 {"domain", "1"}};
  EXPECT_TRUE(match_constraint("", props).value());
  EXPECT_TRUE(match_constraint("name == rutgers", props).value());
  EXPECT_FALSE(match_constraint("name == texas", props).value());
  EXPECT_TRUE(match_constraint("name != texas", props).value());
  EXPECT_TRUE(match_constraint("exist domain", props).value());
  EXPECT_FALSE(match_constraint("exist missing", props).value());
  EXPECT_TRUE(
      match_constraint("name == rutgers and domain == 1", props).value());
  EXPECT_FALSE(
      match_constraint("name == rutgers and domain == 2", props).value());
}

TEST(ConstraintTest, SyntaxErrors) {
  const std::map<std::string, std::string> props;
  EXPECT_FALSE(match_constraint("name ==", props).ok());
  EXPECT_FALSE(match_constraint("name ~= x", props).ok());
  EXPECT_FALSE(match_constraint("a == b or c == d", props).ok());
  EXPECT_FALSE(match_constraint("a == b and", props).ok());
  EXPECT_FALSE(match_constraint("exist", props).ok());
}

TEST_F(OrbTest, TraderExportQueryWithdraw) {
  const ObjectRef trader_ref =
      b_->orb->activate(std::make_shared<TraderService>());
  const ObjectRef svc = b_->orb->activate(std::make_shared<CalcServant>());
  TraderClient trader(*a_->orb, trader_ref);

  std::uint64_t offer_id = 0;
  trader.export_offer("DISCOVER", svc, {{"name", "rutgers"}},
                      [&](util::Result<std::uint64_t> r) {
                        ASSERT_TRUE(r.ok());
                        offer_id = r.value();
                      });
  trader.export_offer("DISCOVER", svc, {{"name", "texas"}},
                      [](util::Result<std::uint64_t>) {});
  trader.export_offer("OTHER", svc, {}, [](util::Result<std::uint64_t>) {});
  net_.run_until_idle();
  ASSERT_NE(offer_id, 0u);

  std::vector<ServiceOffer> offers;
  trader.query("DISCOVER", "", [&](util::Result<std::vector<ServiceOffer>> r) {
    ASSERT_TRUE(r.ok());
    offers = r.value();
  });
  net_.run_until_idle();
  EXPECT_EQ(offers.size(), 2u);  // OTHER filtered by type

  trader.query("DISCOVER", "name == texas",
               [&](util::Result<std::vector<ServiceOffer>> r) {
                 ASSERT_TRUE(r.ok());
                 offers = r.value();
               });
  net_.run_until_idle();
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(offers[0].properties.at("name"), "texas");

  bool withdrawn = false;
  trader.withdraw(offer_id, [&](util::Status s) { withdrawn = s.ok(); });
  net_.run_until_idle();
  EXPECT_TRUE(withdrawn);
  trader.query("DISCOVER", "", [&](util::Result<std::vector<ServiceOffer>> r) {
    offers = r.value();
  });
  net_.run_until_idle();
  EXPECT_EQ(offers.size(), 1u);
}

TEST_F(OrbTest, ObjectRefEncodesAndPrints) {
  ObjectRef ref;
  ref.node = 3;
  ref.key = 9;
  ref.interface = "Calc";
  wire::Encoder e;
  encode(e, ref);
  wire::Decoder d(e.data());
  EXPECT_EQ(decode_object_ref(d), ref);
  EXPECT_EQ(ref.to_string(), "IOR:Calc@3/9");
}

}  // namespace
}  // namespace discover::orb
