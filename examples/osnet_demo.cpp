// Two-process steering demo over real TCP (127.0.0.1).
//
// The same middleware that runs in-process elsewhere here crosses an actual
// socket: one OS process hosts the registry, a DISCOVER server and a
// steerable heat-diffusion app; the other hosts a portal client that logs
// in, takes the steering lock, changes a parameter and watches updates
// arrive.  Both processes construct the SAME global node-id space in the
// same order — the server process adds ids 0-2 locally and the client as a
// remote, the client process mirrors that — which is the role the server's
// well-known address plays in the paper.
//
// Run it in two terminals:
//
//   ./build/examples/osnet_demo server 45123
//   ./build/examples/osnet_demo client 45123
//
// or let one invocation fork both halves (scripts/osnet_demo.sh does this):
//
//   ./build/examples/osnet_demo both
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "app/heat2d.h"
#include "core/client.h"
#include "core/server.h"
#include "net/os_network.h"
#include "workload/scenario.h"  // RegistryNode
#include "workload/sync_ops.h"

using namespace discover;

namespace {

std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true); }

// Node ids, identical in both processes (construction order is the
// contract): 0 registry, 1 server, 2 app, 3 client.
constexpr std::uint32_t kServer = 1;

int run_server(std::uint16_t port, int run_for_s) {
  net::OsNetworkConfig cfg;
  cfg.listen_port = port;
  net::OsNetwork net(cfg);

  workload::RegistryNode registry(net);
  registry.attach(net.add_node("registry", &registry, net::DomainId{0}));

  core::ServerConfig scfg;
  scfg.name = "osnet-demo";
  core::DiscoverServer server(net, scfg);
  const net::NodeId server_node =
      net.add_node("server:osnet-demo", &server, net::DomainId{1});
  server.attach(server_node);
  server.set_registry(registry.naming_ref(), registry.trader_ref());

  app::AppConfig acfg;
  acfg.name = "heat2d";
  acfg.acl = workload::make_acl({{"alice", security::Privilege::steer}});
  acfg.step_time = util::milliseconds(2);
  acfg.update_every = 10;
  acfg.interact_every = 20;
  acfg.interaction_window = util::milliseconds(2);
  app::Heat2DApp heat(net, acfg, 32);
  const net::NodeId app_node =
      net.add_node("app:heat2d", &heat, net::DomainId{1});
  heat.attach(app_node);

  // The client never listens; replies flow back over its own connection.
  net.add_remote("client:alice", "127.0.0.1", 0, net::DomainId{2});

  const util::Status st = net.start();
  if (!st.ok()) {
    std::fprintf(stderr, "server: %s\n", st.error().message.c_str());
    return 1;
  }
  net.post(server_node, [&] { server.start(); });
  net.post(app_node, [&] { heat.connect(server_node); });
  std::printf("server: listening on %s (run for %ds, Ctrl-C to stop)\n",
              net.listen_addr().c_str(), run_for_s);
  std::fflush(stdout);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(run_for_s);
  while (!g_stop.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const net::OsNetworkStats stats = net.os_stats();
  std::printf(
      "server: done — alpha=%.3f, %llu frames in / %llu out, "
      "%llu bytes in / %llu out, %llu conns accepted\n",
      heat.alpha(), static_cast<unsigned long long>(stats.frames_in),
      static_cast<unsigned long long>(stats.frames_out),
      static_cast<unsigned long long>(stats.bytes_in),
      static_cast<unsigned long long>(stats.bytes_out),
      static_cast<unsigned long long>(stats.accepted));
  std::fflush(stdout);  // the `both` mode exits via _exit, which skips stdio
  net.stop();
  server.drain_shards();
  return 0;
}

int run_client(std::uint16_t port) {
  net::OsNetworkConfig cfg;
  cfg.listen = false;  // pure client: one outbound connection carries all
  net::OsNetwork net(cfg);

  net.add_remote("registry", "127.0.0.1", port, net::DomainId{0});
  net.add_remote("server:osnet-demo", "127.0.0.1", port, net::DomainId{1});
  net.add_remote("app:heat2d", "127.0.0.1", port, net::DomainId{1});

  core::ClientConfig ccfg;
  ccfg.user = "alice";
  ccfg.poll_period = util::milliseconds(20);
  core::DiscoverClient alice(net, ccfg);
  alice.attach(net.add_node("client:alice", &alice, net::DomainId{2}));
  alice.set_server(net::NodeId{kServer});

  const util::Status st = net.start();
  if (!st.ok()) {
    std::fprintf(stderr, "client: %s\n", st.error().message.c_str());
    return 1;
  }

  auto login = workload::sync_login(net, alice, util::seconds(15));
  if (!login.ok() || !login.value().ok || login.value().applications.empty()) {
    std::fprintf(stderr, "client: login failed (is the server running?)\n");
    return 1;
  }
  const proto::AppId app_id = login.value().applications[0].id;
  std::printf("client: logged in over TCP, %zu app(s) listed\n",
              login.value().applications.size());

  if (!workload::sync_select(net, alice, app_id).value_or({}).ok ||
      !workload::sync_onboard_steerer(net, alice, app_id)) {
    std::fprintf(stderr, "client: could not take the steering lock\n");
    return 1;
  }
  std::printf("client: selected %s and acquired the steering lock\n",
              app_id.to_string().c_str());

  auto ack = workload::sync_command(net, alice, app_id,
                                    proto::CommandKind::set_param, "alpha",
                                    proto::ParamValue{0.21});
  std::printf("client: set_param alpha=0.21 -> %s\n",
              ack.ok() && ack.value().accepted ? "accepted" : "rejected");

  // Watch a few updates stream back over the same connection.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (alice.events_of_kind(proto::EventKind::update) < 5 &&
         std::chrono::steady_clock::now() < deadline && !g_stop.load()) {
    (void)workload::sync_poll(net, alice, app_id, util::seconds(2));
  }
  std::printf("client: received %llu update events\n",
              static_cast<unsigned long long>(
                  alice.events_of_kind(proto::EventKind::update)));

  const net::OsNetworkStats stats = net.os_stats();
  std::printf("client: %llu frames in / %llu out over one socket\n",
              static_cast<unsigned long long>(stats.frames_in),
              static_cast<unsigned long long>(stats.frames_out));
  net.stop();
  return alice.events_of_kind(proto::EventKind::update) > 0 ? 0 : 1;
}

int run_both(std::uint16_t port) {
  const pid_t child = fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }
  if (child == 0) {
    _exit(run_server(port, /*run_for_s=*/20));
  }
  // Give the acceptor a moment; the transport would also just retry.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const int rc = run_client(port);
  kill(child, SIGTERM);
  int wstatus = 0;
  waitpid(child, &wstatus, 0);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  const std::string role = argc > 1 ? argv[1] : "both";
  const std::uint16_t port = static_cast<std::uint16_t>(
      argc > 2 ? std::atoi(argv[2]) : 45123);
  if (role == "server") {
    return run_server(port, argc > 3 ? std::atoi(argv[3]) : 600);
  }
  if (role == "client") return run_client(port);
  if (role == "both") return run_both(port);
  std::fprintf(stderr, "usage: %s [server|client|both] [port]\n", argv[0]);
  return 2;
}
