// The paper's headline scenario (§4.2, §5): two collaboratory domains —
// Rutgers and UT Austin, 20 ms apart — whose DISCOVER servers discover each
// other through the CORBA trader service and form a peer-to-peer network.
// A scientist at Rutgers gets global access to a simulation hosted at
// Texas: login aggregates applications across servers, steering relays
// through the host's CorbaProxy, the distributed lock keeps one driver,
// and chat spans both sites with ONE WAN message per remote server.
//
// Run: ./multi_site_collaboratory
#include <cstdio>

#include "app/inspiral.h"
#include "app/synthetic.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

using namespace discover;

int main() {
  workload::ScenarioConfig net_cfg;
  net_cfg.wan = {util::milliseconds(20), 12.5e6};  // 100 Mb/s, 20 ms RTT/2
  net_cfg.server_template.peer_refresh_period = util::milliseconds(200);
  workload::Scenario scenario(net_cfg);

  auto& rutgers = scenario.add_server("rutgers", 1);
  auto& texas = scenario.add_server("texas", 2);

  // A numerical-relativity run is hosted at Texas...
  app::AppConfig gw_cfg;
  gw_cfg.name = "binary-inspiral";
  gw_cfg.description = "compact binary inspiral (post-Newtonian)";
  gw_cfg.acl = workload::make_acl({{"alice", security::Privilege::steer},
                                   {"tex", security::Privilege::read_write}});
  gw_cfg.step_time = util::milliseconds(1);
  gw_cfg.update_every = 10;
  gw_cfg.interact_every = 20;
  auto& inspiral = scenario.add_app<app::InspiralApp>(texas, gw_cfg);

  // ...while alice's home server at Rutgers runs an unrelated local job
  // that carries her identity (level-1 auth needs a local ACL entry).
  app::AppConfig local_cfg;
  local_cfg.name = "rutgers-monitor";
  local_cfg.acl = workload::make_acl({{"alice", security::Privilege::read_only}});
  local_cfg.step_time = util::milliseconds(5);
  local_cfg.update_every = 100;
  scenario.add_app<app::SyntheticApp>(rutgers, local_cfg, app::SyntheticSpec{});

  scenario.run_until([&] {
    return inspiral.registered() && rutgers.peer_count() == 1 &&
           texas.peer_count() == 1;
  });
  std::printf("peer network up: rutgers sees %zu peer, texas sees %zu peer\n",
              rutgers.peer_count(), texas.peer_count());

  // Alice logs in at her CLOSEST server; the login fans out to every peer
  // (cross-server authentication, §5.2.2) and aggregates her applications.
  auto& alice = scenario.add_client("alice", rutgers);
  auto login = workload::sync_login(scenario.net(), alice);
  std::printf("alice@rutgers login: %zu applications across the network\n",
              login.value().applications.size());
  proto::AppId gw_id;
  for (const auto& info : login.value().applications) {
    std::printf("  %-18s host=server-%u privilege=%s\n", info.name.c_str(),
                info.id.host, security::privilege_name(info.privilege));
    if (info.name == "binary-inspiral") gw_id = info.id;
  }

  // Remote selection: rutgers resolves the CorbaProxy through the naming
  // service and subscribes to the host's event stream.
  scenario.net().reset_traffic();
  (void)workload::sync_onboard_steerer(scenario.net(), alice, gw_id);
  std::printf("\nalice steers the Texas-hosted run from Rutgers:\n");
  auto ack = workload::sync_command(scenario.net(), alice, gw_id,
                                    proto::CommandKind::set_param,
                                    "total_mass", proto::ParamValue{35.0});
  std::printf("  set total_mass=35: %s\n", ack.value().message.c_str());
  scenario.run_until([&] {
    return std::abs(
               std::get<double>(inspiral.control().execute([] {
                 proto::AppCommand c;
                 c.kind = proto::CommandKind::get_param;
                 c.param = "total_mass";
                 return c;
               }()).value) - 35.0) < 1e-9;
  });
  std::printf("  application applied the change (separation=%.1f M)\n",
              inspiral.separation());

  // Distributed lock: tex (local at texas) must wait for alice's release.
  auto& tex = scenario.add_client("tex", texas);
  (void)workload::sync_login(scenario.net(), tex);
  (void)workload::sync_select(scenario.net(), tex, gw_id);
  (void)workload::sync_command(scenario.net(), tex, gw_id,
                         proto::CommandKind::acquire_lock);
  scenario.run_for(util::milliseconds(100));
  std::printf("\nlock holder at host: %s (tex is queued)\n",
              texas.lock_holder(gw_id)->user.c_str());
  (void)workload::sync_command(scenario.net(), alice, gw_id,
                         proto::CommandKind::release_lock);
  scenario.run_until([&] {
    const auto h = texas.lock_holder(gw_id);
    return h.has_value() && h->user == "tex";
  });
  std::printf("after alice releases: %s holds the lock (FIFO hand-off)\n",
              texas.lock_holder(gw_id)->user.c_str());

  // Cross-site collaboration: one WAN message per remote server, fanned out
  // locally at each site (§5.2.3).
  (void)workload::sync_collab_post(scenario.net(), alice, gw_id,
                             proto::EventKind::chat,
                             "seeing clean inspiral at mass 35");
  scenario.run_for(util::milliseconds(200));
  (void)workload::sync_poll(scenario.net(), tex, gw_id);
  for (const auto& ev : tex.received_events()) {
    if (ev.kind == proto::EventKind::chat) {
      std::printf("\ntex@texas received chat from %s: \"%s\"\n",
                  ev.user.c_str(), ev.text.c_str());
    }
  }

  const auto traffic = scenario.net().traffic();
  std::printf("\nWAN traffic for the whole session: %llu messages, %s\n",
              static_cast<unsigned long long>(traffic.wan_messages),
              util::format_bytes(traffic.wan_bytes).c_str());
  std::printf("multi-site collaboratory demo complete\n");
  return 0;
}
