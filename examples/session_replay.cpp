// Session archival and replay (paper §5.2.5) plus the record-store
// ownership rules (§6.3): a steering session is logged at the host server;
// a latecomer catches up from the application log; interaction logs let a
// user replay their own commands; archived records land in the database
// with the right owners and read-only grants.
//
// Run: ./session_replay
#include <cstdio>

#include "app/wave1d.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

using namespace discover;

int main() {
  workload::ScenarioConfig cfg_net;
  cfg_net.server_template.mirror_archive_to_db = true;
  workload::Scenario scenario(cfg_net);
  auto& server = scenario.add_server("archive-demo", 1);

  app::AppConfig cfg;
  cfg.name = "seismic";
  cfg.description = "1-D acoustic wave";
  // "operator" owns the application (listed first with the top privilege);
  // alice steers; larry reads.  Ownership drives the §6.3 record rules.
  cfg.acl = workload::make_acl({{"operator", security::Privilege::steer},
                                {"alice", security::Privilege::steer},
                                {"late-larry", security::Privilege::read_only}});
  cfg.step_time = util::milliseconds(1);
  cfg.update_every = 25;
  cfg.interact_every = 50;
  auto& wave = scenario.add_app<app::Wave1DApp>(server, cfg);
  scenario.run_until([&] { return wave.registered(); });
  const proto::AppId app_id = wave.app_id();

  // --- alice runs a steering session --------------------------------------
  auto& alice = scenario.add_client("alice", server);
  (void)workload::sync_onboard_steerer(scenario.net(), alice, app_id);
  for (const double freq : {8.0, 12.0, 6.5}) {
    (void)workload::sync_command(scenario.net(), alice, app_id,
                           proto::CommandKind::set_param, "source_freq",
                           proto::ParamValue{freq});
    scenario.run_for(util::milliseconds(120));
  }
  std::printf("alice steered source_freq three times; archive now holds %llu"
              " events\n",
              static_cast<unsigned long long>(
                  server.archive().app_events_logged()));

  // --- her interaction log replays her own session -------------------------
  const auto mine = server.archive().interactions("alice", app_id);
  std::printf("\nalice's interaction log (%zu entries):\n", mine.size());
  for (const auto& ev : mine) {
    std::printf("  [%s] %s %s%s%s\n", proto::event_kind_name(ev.kind),
                ev.text.c_str(), ev.param.c_str(),
                ev.param.empty() ? "" : "=",
                ev.param.empty()
                    ? ""
                    : proto::param_value_to_string(ev.value).c_str());
  }

  // --- a latecomer catches up from the application log ---------------------
  auto& larry = scenario.add_client("late-larry", server);
  (void)workload::sync_login(scenario.net(), larry);
  (void)workload::sync_select(scenario.net(), larry, app_id);
  auto hist = workload::sync_history(scenario.net(), larry, app_id, 0, 0);
  const auto replayed =
      core::SessionArchive::replay_params(hist.value().events);
  std::printf("\nlate-larry fetched %zu archived events and reconstructed:\n",
              hist.value().events.size());
  for (const auto& [param, value] : replayed) {
    std::printf("  %s = %s\n", param.c_str(),
                proto::param_value_to_string(value).c_str());
  }
  std::printf("live application source_freq matches: %s\n",
              std::abs(std::get<double>(replayed.at("source_freq")) - 6.5) <
                      1e-9
                  ? "yes"
                  : "NO");

  // --- database ownership (§6.3) -------------------------------------------
  auto& db = server.record_store();
  const db::Table* table = db.find_table("app_log_" + app_id.to_string());
  std::printf("\nrecord store table '%s': %zu records\n",
              table->name().c_str(), table->size());
  std::map<std::string, int> by_owner;
  for (const auto& rec : table->scan_all()) ++by_owner[rec.owner];
  for (const auto& [owner, n] : by_owner) {
    std::printf("  owner %-12s: %d records\n", owner.c_str(), n);
  }
  std::printf("(responses to alice's requests are owned by alice; periodic\n"
              " application data is owned by the application owner — §6.3)\n");
  return 0;
}
