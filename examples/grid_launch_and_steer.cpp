// The paper's closing scenario (§7): "a client can use Globus services
// provided by the CORBA CoG Kit to discover, allocate and stage a
// scientific simulation, and then use the DISCOVER web-portal to
// collaboratively monitor, interact with, and steer the application."
//
// This example runs that pipeline end to end: a GIS directory, two grid
// compute resources with GRAM job managers, the CoG kit allocating a
// reservoir simulation onto the least-loaded resource, and alice steering
// the freshly launched job through her DISCOVER portal.
//
// Run: ./grid_launch_and_steer
#include <cstdio>

#include "core/service_host.h"
#include "grid/cog.h"
#include "grid/resource.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

using namespace discover;

int main() {
  workload::Scenario scenario;
  auto& server = scenario.add_server("steering-portal", 1);

  // --- Grid fabric ----------------------------------------------------------
  core::ServiceHost gis_host(scenario.net());
  const net::NodeId gis_node =
      scenario.net().add_node("gis", &gis_host, net::DomainId{0});
  gis_host.attach(gis_node);
  gis_host.set_registry(scenario.registry().trader_ref());
  auto gis = std::make_shared<grid::GridInformationService>();
  const orb::ObjectRef gis_ref =
      gis_host.publish(grid::kGisServiceType, gis, {});

  const auto make_resource = [&](const std::string& name, std::uint32_t cpus,
                                 const std::string& site) {
    grid::ResourceConfig cfg;
    cfg.name = name;
    cfg.cpus = cpus;
    cfg.attributes = {{"site", site}};
    auto resource = std::make_unique<grid::GridResource>(scenario.net(), cfg);
    const net::NodeId node = scenario.net().add_node("resource:" + name,
                                                     resource.get(),
                                                     net::DomainId{2});
    resource->attach(node);
    resource->set_gis(gis_ref);
    resource->start();
    return resource;
  };
  auto hpc1 = make_resource("hpc-cluster-1", 2, "texas");
  auto hpc2 = make_resource("hpc-cluster-2", 16, "texas");
  scenario.run_until([&] { return gis->resource_count() == 2; });
  std::printf("grid fabric up: %zu resources registered with the GIS\n",
              gis->resource_count());

  // --- discover + allocate + stage via the CoG kit ---------------------------
  grid::CorbaCoG cog(gis_host.orb(), gis_ref);
  grid::JobDescription job;
  job.kind = "reservoir";
  job.name = "waterflood-study-7";
  job.acl = workload::make_acl({{"alice", security::Privilege::steer}});
  job.discover_server = server.node().value();
  job.step_time = util::milliseconds(1);
  job.update_every = 10;
  job.interact_every = 20;
  job.stage_bytes = 64 << 20;  // 64 MiB of executable + input decks

  grid::JobStatus placed;
  bool done = false;
  cog.allocate_and_submit("site == texas", job,
                          [&](util::Result<grid::JobStatus> r) {
                            placed = r.value();
                            done = true;
                          });
  scenario.run_until([&] { return done; });
  std::printf("CoG allocated job %llu (%s), state=%s\n",
              static_cast<unsigned long long>(placed.id),
              placed.name.c_str(), grid::job_state_name(placed.state));

  scenario.run_until([&] {
    return server.local_app_count() == 1 &&
           !hpc2->status_of(placed.id).discover_app_id.empty();
  });
  const grid::JobStatus running = hpc2->status_of(placed.id);
  std::printf("job is %s on hpc-cluster-2, DISCOVER app id %s\n",
              grid::job_state_name(running.state),
              running.discover_app_id.c_str());

  // --- steer through the DISCOVER portal -------------------------------------
  auto& alice = scenario.add_client("alice", server);
  auto login = workload::sync_login(scenario.net(), alice);
  const proto::AppId app_id = login.value().applications[0].id;
  workload::sync_onboard_steerer(scenario.net(), alice, app_id);
  auto ack = workload::sync_command(scenario.net(), alice, app_id,
                                    proto::CommandKind::set_param,
                                    "injection_rate",
                                    proto::ParamValue{900.0});
  std::printf("alice steers injection_rate=900: %s\n",
              ack.value().message.c_str());
  scenario.run_for(util::milliseconds(300));

  auto poll = workload::sync_poll(scenario.net(), alice, app_id);
  std::printf("portal polled %zu events from the running grid job\n",
              poll.value().events.size());
  for (const auto& ev : poll.value().events) {
    if (ev.kind == proto::EventKind::update) {
      std::printf("  update iter=%llu oil_rate=%.2f water_cut=%.3f\n",
                  static_cast<unsigned long long>(ev.iteration),
                  ev.metrics.count("oil_rate") ? ev.metrics.at("oil_rate")
                                               : 0.0,
                  ev.metrics.count("water_cut") ? ev.metrics.at("water_cut")
                                                : 0.0);
      break;
    }
  }

  // --- wind down through the resource manager --------------------------------
  bool cancelled = false;
  cog.cancel(hpc2->gram_ref(), placed.id,
             [&](util::Status s) { cancelled = s.ok(); });
  scenario.run_until([&] { return cancelled; });
  scenario.run_until([&] { return server.local_app_count() == 0; });
  std::printf("job cancelled through GRAM; DISCOVER server shows %zu apps\n",
              server.local_app_count());
  std::printf("grid launch-and-steer demo complete\n");
  return 0;
}
