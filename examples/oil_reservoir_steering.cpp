// Domain scenario: interactive steering of a waterflood reservoir
// simulation — the flagship DISCOVER application class (paper §4, §7).
//
// A reservoir engineer watches the water cut climb as injected water
// breaks through, and steers the injection rate down mid-run to protect
// the producing well, all through the middleware: commands flow through
// the command handler, are buffered while the simulation computes, and
// responses/updates come back through the poll-and-pull portal.
//
// Run: ./oil_reservoir_steering
#include <cstdio>

#include "app/reservoir.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

using namespace discover;

int main() {
  workload::Scenario scenario;
  auto& server = scenario.add_server("field-office", 1);

  app::AppConfig cfg;
  cfg.name = "waterflood";
  cfg.description = "five-spot waterflood, 24x24 grid";
  cfg.acl = workload::make_acl({{"engineer", security::Privilege::steer}});
  cfg.step_time = util::milliseconds(1);
  cfg.update_every = 20;
  cfg.interact_every = 40;
  auto& reservoir = scenario.add_app<app::ReservoirApp>(server, cfg, 24, 24);
  scenario.run_until([&] { return reservoir.registered(); });
  const proto::AppId app_id = reservoir.app_id();

  auto& engineer = scenario.add_client("engineer", server);
  if (!workload::sync_onboard_steerer(scenario.net(), engineer, app_id)) {
    std::printf("onboarding failed\n");
    return 1;
  }
  std::printf("engineer connected and holding the steering lock\n\n");
  std::printf("%8s %14s %12s %12s %14s\n", "day", "avg_press/psi",
              "water_cut", "oil_rate", "inj_rate");

  const auto report = [&] {
    std::printf("%8.1f %14.1f %12.3f %12.2f %14.1f\n", reservoir.sim_time(),
                reservoir.average_pressure(), reservoir.water_cut(),
                reservoir.oil_rate(), reservoir.injection_rate());
  };

  // Phase 1: aggressive flood.
  for (int i = 0; i < 4; ++i) {
    scenario.run_for(util::milliseconds(100));
    report();
  }

  // The engineer reacts to rising water cut: cut injection by half.
  std::printf("\n>>> steering: water cut rising, set injection_rate=250\n\n");
  auto ack = workload::sync_command(
      scenario.net(), engineer, app_id, proto::CommandKind::set_param,
      "injection_rate", proto::ParamValue{250.0});
  std::printf("    server: %s\n\n", ack.value().message.c_str());

  for (int i = 0; i < 4; ++i) {
    scenario.run_for(util::milliseconds(100));
    report();
  }

  // Checkpoint the run and inspect the session archive.  The checkpoint
  // command sits in the daemon servlet's buffer until the simulation next
  // enters its interaction phase, so give it time to land.
  (void)workload::sync_command(scenario.net(), engineer, app_id,
                         proto::CommandKind::checkpoint);
  scenario.run_for(util::milliseconds(100));
  auto hist = workload::sync_history(scenario.net(), engineer, app_id, 0, 0);
  std::printf("\nsession archive holds %zu events; replaying steering:\n",
              hist.value().events.size());
  for (const auto& [param, value] :
       core::SessionArchive::replay_params(hist.value().events)) {
    std::printf("  final %s = %s\n", param.c_str(),
                proto::param_value_to_string(value).c_str());
  }
  std::printf("\ncheckpoints taken by application: %llu\n",
              static_cast<unsigned long long>(reservoir.checkpoints_taken()));
  return 0;
}
