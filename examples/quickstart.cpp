// Quickstart: one DISCOVER server, one interactive application, one portal
// client.  Shows the full paper workflow — register, login (level-1 auth),
// select (level-2 auth), acquire the steering lock, steer a parameter,
// poll for updates/responses.
//
// Run: ./quickstart
#include <cstdio>

#include "app/heat2d.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

using namespace discover;

int main() {
  // A deterministic simulated network: everything below is reproducible.
  workload::Scenario scenario;
  auto& server = scenario.add_server("campus-server", /*domain=*/1);

  // An interactive 2-D heat-diffusion simulation connects to the server and
  // registers its users and steerable parameters (paper §4.1).
  app::AppConfig cfg;
  cfg.name = "heat2d";
  cfg.description = "2-D heat diffusion demo";
  cfg.acl = workload::make_acl({{"alice", security::Privilege::steer},
                                {"bob", security::Privilege::read_only}});
  cfg.step_time = util::milliseconds(1);
  cfg.update_every = 5;
  cfg.interact_every = 10;
  auto& heat = scenario.add_app<app::Heat2DApp>(server, cfg);
  scenario.run_until([&] { return heat.registered(); });
  std::printf("application registered as %s (host server %u)\n",
              heat.app_id().to_string().c_str(), heat.app_id().host);

  // Alice logs in through her web portal: level-1 authentication against
  // the ACLs the application supplied at registration.
  auto& alice = scenario.add_client("alice", server);
  auto login = workload::sync_login(scenario.net(), alice);
  std::printf("login: %s — %zu application(s) visible\n",
              login.value().ok ? "ok" : "FAILED",
              login.value().applications.size());

  // Level-2 authentication yields a steering interface customized to her
  // privileges.
  const proto::AppId app_id = login.value().applications[0].id;
  auto select = workload::sync_select(scenario.net(), alice, app_id);
  std::printf("selected %s with privilege %s; interface:\n",
              app_id.to_string().c_str(),
              security::privilege_name(select.value().privilege));
  for (const auto& p : select.value().interface_spec) {
    std::printf("  %-12s = %-10s %s%s\n", p.name.c_str(),
                proto::param_value_to_string(p.value).c_str(),
                p.units.c_str(), p.steerable ? "  [steerable]" : "");
  }

  // Steering requires the lock (paper §5.2.4: one driver at a time).
  (void)workload::sync_onboard_steerer(scenario.net(), alice, app_id);
  std::printf("steering lock acquired by %s\n",
              server.lock_holder(app_id)->user.c_str());

  auto ack = workload::sync_command(scenario.net(), alice, app_id,
                                    proto::CommandKind::set_param, "alpha",
                                    proto::ParamValue{0.22});
  std::printf("set alpha=0.22: %s\n", ack.value().message.c_str());
  scenario.run_until(
      [&] { return std::abs(heat.alpha() - 0.22) < 1e-12; });
  std::printf("application now runs with alpha=%.2f\n", heat.alpha());

  // Poll-and-pull: drain the queued updates and responses (paper §6.2).
  scenario.run_for(util::milliseconds(50));
  auto poll = workload::sync_poll(scenario.net(), alice, app_id);
  std::printf("poll returned %zu events (backlog %u):\n",
              poll.value().events.size(), poll.value().backlog);
  int shown = 0;
  for (const auto& ev : poll.value().events) {
    if (++shown > 5) break;
    std::printf("  seq=%llu %-11s %s\n",
                static_cast<unsigned long long>(ev.seq),
                proto::event_kind_name(ev.kind),
                ev.kind == proto::EventKind::update
                    ? ("iter=" + std::to_string(ev.iteration)).c_str()
                    : ev.text.c_str());
  }
  std::printf("quickstart complete\n");
  return 0;
}
